package experiments

import (
	"fmt"
	"io"
	"time"

	"thetis/internal/core"
	"thetis/internal/datagen"
	"thetis/internal/lake"
	"thetis/internal/metrics"
)

// --- Score-mode ablation (Section 4.1's two SemRel interpretations) ---

// ScoreModeRow is one (similarity, tuples, mode) cell.
type ScoreModeRow struct {
	Method  string
	Tuples  int
	Mode    core.ScoreMode
	Summary metrics.Summary
}

// ScoreModeResult compares Algorithm 1's entity-wise aggregation against
// the pairwise tuple-to-tuple reading of Equation 1 (both with MAX row
// aggregation). The paper adopts the entity-wise algorithm; this ablation
// quantifies how much the choice matters on NDCG@10.
type ScoreModeResult struct {
	Rows []ScoreModeRow
}

// RunScoreModeAblation evaluates both modes on both query sizes.
func RunScoreModeAblation(env *Env) ScoreModeResult {
	var out ScoreModeResult
	for _, tuples := range []int{1, 5} {
		queries := env.QuerySet(tuples)
		for _, kind := range []SimKind{SimTypes, SimEmbeddings} {
			for _, mode := range []core.ScoreMode{core.ModeEntityWise, core.ModePairwise} {
				eng := engineFor(env, kind)
				eng.Mode = mode
				r := engineRunner(fmt.Sprintf("STS%v/%v", kind, mode), eng)
				sample := evalNDCG(env, r, queries, 10)
				out.Rows = append(out.Rows, ScoreModeRow{
					Method: fmt.Sprintf("STS%v", kind), Tuples: tuples, Mode: mode,
					Summary: metrics.Summarize(sample),
				})
			}
		}
	}
	return out
}

// Render prints the comparison.
func (r ScoreModeResult) Render(w io.Writer) {
	renderHeader(w, "Ablation: SemRel interpretation (entity-wise Algorithm 1 vs pairwise Eq. 1), NDCG@10")
	tw := newTabWriter(w)
	fmt.Fprintln(tw, "Method\tTuples\tMode\tNDCG@10 distribution")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%s\t%d\t%v\t%s\n", row.Method, row.Tuples, row.Mode, fmtSummary(row.Summary))
	}
	tw.Flush()
}

// --- Mapping-method ablation (Section 5.1's Hungarian choice) ---

// MappingRow is one (similarity, tuples, method) cell.
type MappingRow struct {
	Method   string
	Tuples   int
	Mapping  core.MappingMethod
	MeanNDCG float64
	MeanTime time.Duration
}

// MappingResult quantifies the Hungarian-vs-greedy column mapping choice:
// quality (NDCG@10) and cost (mean search time).
type MappingResult struct {
	Rows []MappingRow
}

// RunMappingAblation evaluates both assignment algorithms.
func RunMappingAblation(env *Env) MappingResult {
	var out MappingResult
	for _, tuples := range []int{1, 5} {
		queries := env.QuerySet(tuples)
		for _, kind := range []SimKind{SimTypes, SimEmbeddings} {
			for _, mapping := range []core.MappingMethod{core.MappingHungarian, core.MappingGreedy} {
				eng := engineFor(env, kind)
				eng.Mapping = mapping
				r := engineRunner(fmt.Sprintf("STS%v/%v", kind, mapping), eng)
				var ndcg []float64
				var total time.Duration
				for _, bq := range queries {
					start := time.Now()
					ranked, _ := r.Search(bq, 10)
					total += time.Since(start)
					ndcg = append(ndcg, metrics.NDCG(ranked, env.GT[bq.Name].Grades, 10))
				}
				out.Rows = append(out.Rows, MappingRow{
					Method: fmt.Sprintf("STS%v", kind), Tuples: tuples, Mapping: mapping,
					MeanNDCG: metrics.Summarize(ndcg).Mean,
					MeanTime: total / time.Duration(len(queries)),
				})
			}
		}
	}
	return out
}

// Render prints the comparison.
func (r MappingResult) Render(w io.Writer) {
	renderHeader(w, "Ablation: query-to-column mapping (Hungarian vs greedy)")
	tw := newTabWriter(w)
	fmt.Fprintln(tw, "Method\tTuples\tMapping\tMean NDCG@10\tMean time")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%s\t%d\t%v\t%.3f\t%v\n",
			row.Method, row.Tuples, row.Mapping, row.MeanNDCG, row.MeanTime.Round(time.Microsecond))
	}
	tw.Flush()
}

// Mean returns the mean NDCG of a cell, or -1.
func (r MappingResult) Mean(method string, tuples int, mapping core.MappingMethod) float64 {
	for _, row := range r.Rows {
		if row.Method == method && row.Tuples == tuples && row.Mapping == mapping {
			return row.MeanNDCG
		}
	}
	return -1
}

// --- Query-side LSH column aggregation (Section 6.2) ---

// QueryAggRow is one (similarity, tuples, aggregated?) cell.
type QueryAggRow struct {
	Method     string
	Tuples     int
	Aggregated bool
	MeanNDCG   float64
	MeanTime   time.Duration
	Reduction  float64
}

// QueryAggResult evaluates query-side column aggregation for LSEI lookups:
// multi-tuple queries probe the index once per column instead of once per
// entity, trading approximation for lookup cost.
type QueryAggResult struct {
	Rows []QueryAggRow
}

// RunQueryAggAblation compares plain and query-aggregated candidate
// generation with the (30,10) configuration.
func RunQueryAggAblation(env *Env) QueryAggResult {
	m := NewMethods(env)
	cfg := core.LSEIConfig{Vectors: 30, BandSize: 10, Seed: 1}
	var out QueryAggResult
	for _, tuples := range []int{1, 5} {
		queries := env.QuerySet(tuples)
		for _, kind := range []SimKind{SimTypes, SimEmbeddings} {
			lsei := m.LSEI(kind, cfg)
			eng := engineFor(env, kind)
			for _, aggregated := range []bool{false, true} {
				var ndcg []float64
				var total time.Duration
				var reduction float64
				for _, bq := range queries {
					start := time.Now()
					var cands []lake.TableID
					if aggregated {
						cands = lsei.CandidatesAggregated(bq.Query, 1)
					} else {
						cands = lsei.Candidates(bq.Query, 1)
					}
					res, _ := eng.SearchCandidates(bq.Query, cands, 10)
					total += time.Since(start)
					reduction += lsei.Reduction(cands)
					ndcg = append(ndcg, metrics.NDCG(core.RankedTables(res), env.GT[bq.Name].Grades, 10))
				}
				n := float64(len(queries))
				out.Rows = append(out.Rows, QueryAggRow{
					Method: fmt.Sprintf("%v(30,10)", kind), Tuples: tuples, Aggregated: aggregated,
					MeanNDCG:  metrics.Summarize(ndcg).Mean,
					MeanTime:  total / time.Duration(len(queries)),
					Reduction: reduction / n,
				})
			}
		}
	}
	return out
}

// Render prints the comparison.
func (r QueryAggResult) Render(w io.Writer) {
	renderHeader(w, "Ablation: query-side LSH column aggregation (Section 6.2)")
	tw := newTabWriter(w)
	fmt.Fprintln(tw, "Method\tTuples\tQuery agg\tMean NDCG@10\tMean time\tReduction")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%s\t%d\t%v\t%.3f\t%v\t%s\n",
			row.Method, row.Tuples, row.Aggregated, row.MeanNDCG,
			row.MeanTime.Round(time.Microsecond), fmtPct(row.Reduction))
	}
	tw.Flush()
}

// --- helpers shared by the ablation runners ---

// engineFor builds a fresh engine for the similarity kind.
func engineFor(env *Env, kind SimKind) *core.Engine {
	if kind == SimEmbeddings {
		return env.EngineEmbeddings()
	}
	return env.EngineTypes()
}

// engineRunner wraps a configured engine as a Runner.
func engineRunner(name string, eng *core.Engine) Runner {
	return Runner{
		Name: name,
		Search: func(bq datagen.BenchmarkQuery, k int) ([]int, core.Stats) {
			res, stats := eng.Search(bq.Query, k)
			return core.RankedTables(res), stats
		},
	}
}
