package experiments

import (
	"fmt"
	"io"
	"sort"
)

// Renderer is implemented by every experiment result.
type Renderer interface {
	Render(w io.Writer)
}

// registry maps experiment IDs (as used by `benchrunner -exp <id>`) to
// their runners.
var registry = map[string]func(*Env) Renderer{
	"table2":     func(e *Env) Renderer { return RunTable2(e) },
	"fig4":       func(e *Env) Renderer { return RunFig4(e) },
	"fig5":       func(e *Env) Renderer { return RunFig5(e) },
	"table3":     func(e *Env) Renderer { return RunTable34(e) },
	"table4":     func(e *Env) Renderer { return RunTable34(e) },
	"fig6":       func(e *Env) Renderer { return RunFig6(e) },
	"agg":        func(e *Env) Renderer { return RunAggregationAblation(e) },
	"bm25filter": func(e *Env) Renderer { return RunBM25FilterAblation(e) },
	"overlap":    func(e *Env) Renderer { return RunOverlap(e) },
	"scoring":    func(e *Env) Renderer { return RunScoring(e) },
	"scaling":    func(e *Env) Renderer { return RunScaling(e) },
	"wt2019":     func(e *Env) Renderer { return RunWT2019(e) },
	"gittables":  func(e *Env) Renderer { return RunGitTables(e) },
	"noisylink":  func(e *Env) Renderer { return RunNoisyLink(e) },
	"scoremode":  func(e *Env) Renderer { return RunScoreModeAblation(e) },
	"mapping":    func(e *Env) Renderer { return RunMappingAblation(e) },
	"queryagg":   func(e *Env) Renderer { return RunQueryAggAblation(e) },
	"inf":        func(e *Env) Renderer { return RunInformativenessAblation(e) },
	"walks":      func(e *Env) Renderer { return RunWalkAblation(e) },
	"shards":     func(e *Env) Renderer { return RunShards(e) },
	"httpshard":  func(e *Env) Renderer { return RunHTTPShard(e) },
	"live":       func(e *Env) Renderer { return RunLive(e) },
	"ann":        func(e *Env) Renderer { return RunANN(e) },
	"throughput": func(e *Env) Renderer { return RunThroughput(e) },
}

// ExperimentIDs returns the sorted list of runnable experiment IDs.
func ExperimentIDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// JSONer is implemented by results that also serialize a machine-readable
// trajectory record (benchrunner -json, e.g. BENCH_ann.json).
type JSONer interface {
	JSON() ([]byte, error)
}

// Run executes one experiment by ID and renders it to w.
func Run(env *Env, id string, w io.Writer) error {
	_, err := RunCapture(env, id, w)
	return err
}

// RunCapture executes one experiment by ID, renders it to w, and returns
// the typed result so callers can serialize it further.
func RunCapture(env *Env, id string, w io.Writer) (Renderer, error) {
	f, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (known: %v)", id, ExperimentIDs())
	}
	res := f(env)
	res.Render(w)
	return res, nil
}

// RunAll executes every experiment in a stable order. "table3" and
// "table4" share one result, so the pair runs once.
func RunAll(env *Env, w io.Writer) {
	order := []string{
		"table2", "fig4", "fig5", "table3", "fig6",
		"agg", "overlap", "scoring", "bm25filter",
		"scoremode", "mapping", "queryagg", "inf", "walks",
		"scaling", "shards", "httpshard", "ann", "throughput", "live", "wt2019", "gittables", "noisylink",
	}
	for _, id := range order {
		registry[id](env).Render(w)
	}
}
