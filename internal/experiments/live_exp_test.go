package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestLiveExperimentShape(t *testing.T) {
	env := sharedEnv(t)
	r := RunLive(env)
	if r.BaseTables <= 0 || r.Mutations <= 0 {
		t.Fatalf("degenerate setup: base=%d mutations=%d", r.BaseTables, r.Mutations)
	}
	if r.AddMean <= 0 || r.RemoveMean <= 0 || r.Rebuild <= 0 {
		t.Fatalf("non-positive timings: %+v", r)
	}
	if !r.Identical {
		t.Fatal("churned index diverged from from-scratch rebuild")
	}
	// One incremental add must be far cheaper than a full rebuild — the
	// point of the feature. Generous 1/10 bound to stay timing-robust.
	if r.AddMean*10 > r.Rebuild {
		t.Fatalf("incremental add (%v) is not clearly cheaper than rebuild (%v)", r.AddMean, r.Rebuild)
	}
	var buf bytes.Buffer
	r.Render(&buf)
	out := buf.String()
	for _, want := range []string{"Live index maintenance", "AddTable (incremental)", "under churn", "rebuild: true"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render lacks %q:\n%s", want, out)
		}
	}
	// env.Lake must be untouched — other experiments share it.
	if got, want := env.Lake.NumTables(), env.Config.Tables; got != want {
		t.Fatalf("RunLive mutated the shared environment: %d tables, want %d", got, want)
	}
}
