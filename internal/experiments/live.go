package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"thetis/internal/core"
	"thetis/internal/lake"
	"thetis/internal/table"
)

// LiveResult measures live-lake maintenance (docs/LIVE_INDEX.md): the cost
// of folding one table into — or out of — a built LSEI, query latency while
// the corpus churns, and the full-rebuild time the incremental path avoids.
type LiveResult struct {
	BaseTables int
	Mutations  int

	// AddMean/AddP50 are per-AddTable latencies against the live index
	// (signature insertion + filter re-balance + posting updates).
	AddMean, AddP50 time.Duration
	// RemoveMean/RemoveP50 are per-RemoveTable latencies.
	RemoveMean, RemoveP50 time.Duration
	// Rebuild is one from-scratch LSEI build over the final corpus — the
	// cost a non-incremental design pays per mutation batch.
	Rebuild time.Duration

	// QueryP50Static is the steady-state query p50 with no mutations;
	// QueryP50Churn interleaves one remove+re-add pair before every query —
	// sustained mutation pressure on the same structures.
	QueryP50Static, QueryP50Churn time.Duration
	// Identical reports whether rankings under churn stayed score-identical
	// to a from-scratch build over the same surviving corpus (full ID-level
	// equivalence is pinned by the root live_test.go battery).
	Identical bool
}

// liveDeployment is a mutable type-similarity deployment at the core/lake
// level, wired exactly like thetis.System wires live mutation: shared
// frequent-type filter map, signature insertion/removal against the live
// LSEI, re-balancing order matching a from-scratch rebuild.
type liveDeployment struct {
	lk  *lake.Lake
	eng *core.Engine
	ix  *core.LSEI
	fs  *core.TypeFilterState
}

func newLiveDeployment(env *Env, tables []*table.Table, cfg core.LSEIConfig) *liveDeployment {
	lv := lake.New(env.KG.Graph)
	for _, t := range tables {
		lv.Add(t)
	}
	fs := core.NewTypeFilterState([]*lake.Lake{lv}, env.TJ, 0.5)
	ix := core.BuildTypeLSEIFiltered(lv, env.TJ, cfg, fs.Filter())
	return &liveDeployment{lk: lv, eng: core.NewEngine(lv, env.TJ), ix: ix, fs: fs}
}

func (d *liveDeployment) add(t *table.Table) lake.TableID {
	d.fs.AddTable(t, d.ix)
	id := d.lk.Add(t)
	d.ix.AddTable(id)
	return id
}

func (d *liveDeployment) remove(id lake.TableID) *table.Table {
	t := d.lk.Table(id)
	d.lk.Remove(id)
	d.ix.RemoveTable(id, t)
	d.fs.RemoveTable(t, d.ix)
	return t
}

func (d *liveDeployment) search(q core.Query, k, votes int) []core.Result {
	res, _ := core.SearchWithIndex(context.Background(), d.eng, d.ix, votes, q, k, core.FallbackFullScan)
	return res
}

// RunLive benchmarks incremental index maintenance with type-Jaccard σ and
// LSH (30,10), votes=3: mutation latency, rebuild cost, and query latency
// under churn, ending with a rebuild-equivalence check.
func RunLive(env *Env) LiveResult {
	const votes, topK = 3, 10
	cfg := core.LSEIConfig{Vectors: 30, BandSize: 10, Seed: 1}

	all := env.Lake.Tables()
	base := len(all) * 3 / 4
	if len(all)-base > 400 {
		base = len(all) - 400
	}
	out := LiveResult{BaseTables: base, Mutations: len(all) - base}

	queries := make([]core.Query, 0, len(env.Queries1)+len(env.Queries5))
	for _, bq := range env.Queries1 {
		queries = append(queries, bq.Query)
	}
	for _, bq := range env.Queries5 {
		queries = append(queries, bq.Query)
	}

	dep := newLiveDeployment(env, all[:base], cfg)

	// Steady-state query p50 before any churn.
	static := make([]time.Duration, 0, len(queries))
	for _, q := range queries {
		t0 := time.Now()
		dep.search(q, topK, votes)
		static = append(static, time.Since(t0))
	}
	_, out.QueryP50Static = meanP50(static)

	// Add latency: fold the spare tables into the live index one by one.
	addTimes := make([]time.Duration, 0, out.Mutations)
	added := make([]lake.TableID, 0, out.Mutations)
	for _, t := range all[base:] {
		t0 := time.Now()
		added = append(added, dep.add(t))
		addTimes = append(addTimes, time.Since(t0))
	}
	out.AddMean, out.AddP50 = meanP50(addTimes)

	// Query latency under sustained churn: one remove+re-add pair between
	// consecutive queries keeps the filter and buckets moving.
	churn := make([]time.Duration, 0, len(queries))
	for i, q := range queries {
		slot := i % len(added)
		tb := dep.remove(added[slot])
		added[slot] = dep.add(tb)
		t0 := time.Now()
		dep.search(q, topK, votes)
		churn = append(churn, time.Since(t0))
	}
	_, out.QueryP50Churn = meanP50(churn)

	// Remove latency over half the spare tables.
	removeTimes := make([]time.Duration, 0, len(added)/2)
	for i := 0; i < len(added)/2; i++ {
		t0 := time.Now()
		dep.remove(added[i])
		removeTimes = append(removeTimes, time.Since(t0))
	}
	out.RemoveMean, out.RemoveP50 = meanP50(removeTimes)

	// Rebuild cost and score-level equivalence over the survivors.
	survivors := make([]*table.Table, 0, dep.lk.NumTables())
	for _, id := range dep.lk.LiveTableIDs() {
		survivors = append(survivors, dep.lk.Table(id))
	}
	t0 := time.Now()
	ref := newLiveDeployment(env, survivors, cfg)
	out.Rebuild = time.Since(t0)

	out.Identical = true
	for _, q := range queries {
		a := dep.search(q, topK, votes)
		b := ref.search(q, topK, votes)
		if len(a) != len(b) {
			out.Identical = false
			break
		}
		for i := range a {
			if a[i].Score != b[i].Score {
				out.Identical = false
				break
			}
		}
	}
	return out
}

// Render prints the live-maintenance benchmark.
func (r LiveResult) Render(w io.Writer) {
	renderHeader(w, "Live index maintenance: mutation latency and query latency under churn, LSH(30,10) votes=3 top-10")
	fmt.Fprintf(w, "base corpus %d tables, %d live mutations against the built index\n\n", r.BaseTables, r.Mutations)
	tw := newTabWriter(w)
	fmt.Fprintln(tw, "Operation\tMean\tP50")
	fmt.Fprintf(tw, "AddTable (incremental)\t%v\t%v\n", r.AddMean.Round(time.Microsecond), r.AddP50.Round(time.Microsecond))
	fmt.Fprintf(tw, "RemoveTable (incremental)\t%v\t%v\n", r.RemoveMean.Round(time.Microsecond), r.RemoveP50.Round(time.Microsecond))
	fmt.Fprintf(tw, "Full index rebuild\t%v\t\n", r.Rebuild.Round(time.Microsecond))
	fmt.Fprintf(tw, "Query (static corpus)\t\t%v\n", r.QueryP50Static.Round(time.Microsecond))
	fmt.Fprintf(tw, "Query (under churn)\t\t%v\n", r.QueryP50Churn.Round(time.Microsecond))
	tw.Flush()
	fmt.Fprintf(w, "\nscore-identical to from-scratch rebuild: %v\n", r.Identical)
}
