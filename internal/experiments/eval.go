package experiments

import (
	"time"

	"thetis/internal/datagen"
	"thetis/internal/metrics"
)

// evalNDCG runs every query through the runner and returns the per-query
// NDCG@k sample (retrieving k results, judged against graded ground truth).
func evalNDCG(env *Env, r Runner, queries []datagen.BenchmarkQuery, k int) []float64 {
	out := make([]float64, 0, len(queries))
	for _, bq := range queries {
		ranked, _ := r.Search(bq, k)
		gt := env.GT[bq.Name]
		out = append(out, metrics.NDCG(ranked, gt.Grades, k))
	}
	return out
}

// evalRecall returns the per-query recall@k sample: retrieved top-k against
// the top-k ground-truth relevant tables.
func evalRecall(env *Env, r Runner, queries []datagen.BenchmarkQuery, k int) []float64 {
	out := make([]float64, 0, len(queries))
	for _, bq := range queries {
		ranked, _ := r.Search(bq, k)
		gt := env.GT[bq.Name]
		out = append(out, metrics.RecallAtK(ranked, gt.RelevantSet(k), k))
	}
	return out
}

// runtimeResult aggregates the timing grid of Tables 3 and 4.
type runtimeResult struct {
	// MeanTime is the average wall-clock search time per query.
	MeanTime time.Duration
	// MeanReduction is the average fraction of the corpus pruned before
	// scoring (0 for brute-force methods).
	MeanReduction float64
}

// evalRuntime measures the average search time and search-space reduction
// of a runner over a query set (top-k fixed at 10, matching the paper's
// runtime protocol).
func evalRuntime(env *Env, r Runner, queries []datagen.BenchmarkQuery) runtimeResult {
	var total time.Duration
	var reduction float64
	n := env.Lake.NumTables()
	for _, bq := range queries {
		start := time.Now()
		_, stats := r.Search(bq, 10)
		total += time.Since(start)
		if n > 0 {
			reduction += 1 - float64(stats.Candidates)/float64(n)
		}
	}
	if len(queries) == 0 {
		return runtimeResult{}
	}
	return runtimeResult{
		MeanTime:      total / time.Duration(len(queries)),
		MeanReduction: reduction / float64(len(queries)),
	}
}
