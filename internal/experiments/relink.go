package experiments

import (
	"thetis/internal/lake"
	"thetis/internal/linking"
)

// relinkLake clones every table of l, replaces its entity annotations with
// the linker's predictions, and rebuilds the lake (posting lists included).
func relinkLake(l *lake.Lake, linker linking.Linker) *lake.Lake {
	out := lake.New(l.Graph)
	for _, t := range l.Tables() {
		c := t.Clone()
		linking.LinkTable(c, linker)
		out.Add(c)
	}
	return out
}

// relinkLakeKeepGold re-links the environment's gold corpus with a
// (typically degraded) linker, preserving table order and categories so
// gold ground truth stays comparable.
func relinkLakeKeepGold(env *Env, linker linking.Linker) *lake.Lake {
	return relinkLake(env.Lake, linker)
}
