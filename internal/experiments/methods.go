package experiments

import (
	"fmt"

	"thetis/internal/baselines"
	"thetis/internal/core"
	"thetis/internal/datagen"
)

// SimKind selects the entity similarity σ.
type SimKind int

const (
	// SimTypes is the adjusted type-Jaccard similarity (STST).
	SimTypes SimKind = iota
	// SimEmbeddings is the embedding-cosine similarity (STSE).
	SimEmbeddings
)

// String implements fmt.Stringer, using the paper's T/E shorthand.
func (s SimKind) String() string {
	if s == SimEmbeddings {
		return "E"
	}
	return "T"
}

// Runner is one search method under evaluation: it maps a benchmark query
// to a ranked table-ID list plus search statistics.
type Runner struct {
	Name   string
	Search func(bq datagen.BenchmarkQuery, k int) ([]int, core.Stats)
}

// Methods builds and caches the search methods of the evaluation over one
// environment. LSEI indexes are built lazily and memoized per
// configuration.
type Methods struct {
	env    *Env
	lseis  map[string]*core.LSEI
	turl   *baselines.TURLRanker
	union  *baselines.UnionSearcher
	unionE *baselines.EmbeddingUnionSearcher
	join   *baselines.JoinSearcher
}

// NewMethods creates the method registry for env.
func NewMethods(env *Env) *Methods {
	return &Methods{env: env, lseis: make(map[string]*core.LSEI)}
}

func (m *Methods) engine(kind SimKind) *core.Engine {
	if kind == SimEmbeddings {
		return m.env.EngineEmbeddings()
	}
	return m.env.EngineTypes()
}

// SemanticBrute is exact semantic table search without prefiltering (the
// STST/STSE bars of Figure 4).
func (m *Methods) SemanticBrute(kind SimKind) Runner {
	name := "STST"
	if kind == SimEmbeddings {
		name = "STSE"
	}
	eng := m.engine(kind)
	return Runner{
		Name: name,
		Search: func(bq datagen.BenchmarkQuery, k int) ([]int, core.Stats) {
			res, stats := eng.Search(bq.Query, k)
			return core.RankedTables(res), stats
		},
	}
}

// LSEI returns the (lazily built) prefilter index for a kind/config pair.
func (m *Methods) LSEI(kind SimKind, cfg core.LSEIConfig) *core.LSEI {
	key := fmt.Sprintf("%v-%d-%d-%v", kind, cfg.Vectors, cfg.BandSize, cfg.ColumnAggregation)
	if x, ok := m.lseis[key]; ok {
		return x
	}
	var x *core.LSEI
	if kind == SimEmbeddings {
		x = core.BuildEmbeddingLSEI(m.env.Lake, m.env.EC, m.env.Store.Dim(), cfg)
	} else {
		x = core.BuildTypeLSEI(m.env.Lake, m.env.TJ, cfg)
	}
	m.lseis[key] = x
	return x
}

// SemanticLSH is semantic search with LSEI prefiltering, named in the
// paper's notation, e.g. "T(30,10)" with a vote threshold.
func (m *Methods) SemanticLSH(kind SimKind, cfg core.LSEIConfig, votes int) Runner {
	eng := m.engine(kind)
	x := m.LSEI(kind, cfg)
	return Runner{
		Name: fmt.Sprintf("%v(%d,%d)", kind, cfg.Vectors, cfg.BandSize),
		Search: func(bq datagen.BenchmarkQuery, k int) ([]int, core.Stats) {
			cands := x.Candidates(bq.Query, votes)
			res, stats := eng.SearchCandidates(bq.Query, cands, k)
			return core.RankedTables(res), stats
		},
	}
}

// BM25Text is keyword search over the textual content of the query tuples.
func (m *Methods) BM25Text() Runner {
	return Runner{
		Name: "BM25text",
		Search: func(bq datagen.BenchmarkQuery, k int) ([]int, core.Stats) {
			res := m.env.BM25.Search(bq.KeywordQuery(m.env.KG.Graph), k)
			out := make([]int, len(res))
			for i, r := range res {
				out[i] = int(r.Doc)
			}
			return out, core.Stats{Candidates: m.env.BM25.NumDocs(), Scored: len(out)}
		},
	}
}

// TURL is the pooled table-embedding baseline.
func (m *Methods) TURL() Runner {
	if m.turl == nil {
		m.turl = baselines.NewTURLRanker(m.env.Lake, m.env.Store)
	}
	return Runner{
		Name: "TURL",
		Search: func(bq datagen.BenchmarkQuery, k int) ([]int, core.Stats) {
			res := m.turl.Search(bq.Query, k)
			return core.RankedTables(res), core.Stats{Scored: len(res)}
		},
	}
}

// UnionSearch is the Starmie/SANTOS-style union-search baseline.
func (m *Methods) UnionSearch() Runner {
	if m.union == nil {
		m.union = baselines.NewUnionSearcher(m.env.Lake, m.env.TJ)
	}
	return Runner{
		Name: "Union",
		Search: func(bq datagen.BenchmarkQuery, k int) ([]int, core.Stats) {
			res := m.union.Search(bq.Query, k)
			return core.RankedTables(res), core.Stats{Scored: len(res)}
		},
	}
}

// StarmieUnion is the Starmie-style union-search baseline (embedding
// column encoders instead of type signatures).
func (m *Methods) StarmieUnion() Runner {
	if m.unionE == nil {
		m.unionE = baselines.NewEmbeddingUnionSearcher(m.env.Lake, m.env.EC)
	}
	return Runner{
		Name: "UnionE",
		Search: func(bq datagen.BenchmarkQuery, k int) ([]int, core.Stats) {
			res := m.unionE.Search(bq.Query, k)
			return core.RankedTables(res), core.Stats{Scored: len(res)}
		},
	}
}

// JoinSearch is the D³L-style joinability baseline.
func (m *Methods) JoinSearch() Runner {
	if m.join == nil {
		m.join = baselines.NewJoinSearcher(m.env.Lake)
	}
	return Runner{
		Name: "Join",
		Search: func(bq datagen.BenchmarkQuery, k int) ([]int, core.Stats) {
			res := m.join.Search(bq.Query, k)
			return core.RankedTables(res), core.Stats{Scored: len(res)}
		},
	}
}

// Complemented merges a semantic runner with BM25 (the STSTC/STSEC
// combination of Section 7.2: top half of each result set).
func (m *Methods) Complemented(sem Runner) Runner {
	bm := m.BM25Text()
	return Runner{
		Name: sem.Name + "C",
		Search: func(bq datagen.BenchmarkQuery, k int) ([]int, core.Stats) {
			semRanked, stats := sem.Search(bq, k)
			bmRanked, _ := bm.Search(bq, k)
			return core.Complement(semRanked, bmRanked, k), stats
		},
	}
}

// PaperLSHConfigs returns the three LSH configurations the paper sweeps.
func PaperLSHConfigs() []core.LSEIConfig {
	return []core.LSEIConfig{
		{Vectors: 32, BandSize: 8, Seed: 1},
		{Vectors: 128, BandSize: 8, Seed: 1},
		{Vectors: 30, BandSize: 10, Seed: 1},
	}
}
