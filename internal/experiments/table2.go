package experiments

import (
	"fmt"
	"io"

	"thetis/internal/datagen"
	"thetis/internal/lake"
)

// Table2Row is one benchmark-statistics row of Table 2: query shape plus
// corpus shape.
type Table2Row struct {
	Name         string
	QueryTables  int
	QueryColumns float64
	Tables       int
	MeanRows     float64
	MeanColumns  float64
	MeanCoverage float64
}

// Table2Result regenerates Table 2 ("Benchmark statistics").
type Table2Result struct {
	Rows []Table2Row
}

// RunTable2 generates all four corpus profiles against the environment's KG
// at sizes preserving the paper's relative corpus scale
// (WT2015 : WT2019 : GitTables : Synthetic ≈ 1 : 1.9 : 3.6 : 7.3) and
// reports their statistics. The environment's own corpus is the WT2015 row.
func RunTable2(env *Env) Table2Result {
	n := env.Config.Tables
	queries := env.Queries5
	qCols := 0.0
	for _, q := range queries {
		for _, t := range q.Query {
			qCols += float64(len(t))
		}
	}
	if tot := float64(len(queries) * 5); tot > 0 {
		qCols /= tot
	}

	row := func(name string, l *lake.Lake) Table2Row {
		s := l.ComputeStats()
		return Table2Row{
			Name:         name,
			QueryTables:  len(queries),
			QueryColumns: qCols,
			Tables:       s.Tables,
			MeanRows:     s.MeanRows,
			MeanColumns:  s.MeanColumns,
			MeanCoverage: s.MeanCoverage,
		}
	}

	synthetic := datagen.ExpandCorpus(env.Lake, 6, 77) // 7x WT2015, the paper's ~7.3 ratio
	if !env.CanGenerate() {
		// Replayed benchmark: only the loaded corpus and its expansion.
		return Table2Result{Rows: []Table2Row{
			row("WT 2015", env.Lake),
			row("Synthetic", synthetic),
		}}
	}
	wt2019 := datagen.GenerateCorpus(env.KG, datagen.ProfileWT2019(n*19/10))
	git := datagen.GenerateCorpus(env.KG, datagen.ProfileGitTables(n*36/10))

	return Table2Result{Rows: []Table2Row{
		row("WT 2015", env.Lake),
		row("WT 2019", wt2019),
		row("GitTables", git),
		row("Synthetic", synthetic),
	}}
}

// Render prints the paper-style table.
func (r Table2Result) Render(w io.Writer) {
	renderHeader(w, "Table 2: Benchmark statistics")
	tw := newTabWriter(w)
	fmt.Fprintln(tw, "Corpus\tQueries T\tQueries C\tTables T\tMean R\tMean C\tCov")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%s\t%d\t%.1f\t%d\t%.1f\t%.1f\t%s\n",
			row.Name, row.QueryTables, row.QueryColumns, row.Tables,
			row.MeanRows, row.MeanColumns, fmtPct(row.MeanCoverage))
	}
	tw.Flush()
}
