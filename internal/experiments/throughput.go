package experiments

// Throughput mode (docs/THROUGHPUT.md): a closed-loop load generator that
// drives the serving stack in its three modes — sequential /search, batch
// /search/batch, and sequential-with-cross-cache — against both an
// in-process System and a loopback HTTP daemon. The point is not paper
// fidelity (no figure reports this) but the engineering claim the batch
// and cross-cache machinery makes: same rankings, more queries per second.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"thetis"
	"thetis/internal/core"
	"thetis/internal/datagen"
	"thetis/internal/server"
)

// throughputBatchSize is how many queries one batch-mode request carries.
const throughputBatchSize = 16

// ThroughputRow is one (target, mode) cell of the throughput sweep.
type ThroughputRow struct {
	// Target is "inproc" (direct System calls) or "http" (a loopback
	// daemon behind internal/server with shedding and timeouts on).
	Target string `json:"target"`
	// Mode is "single" (one query per request), "batch" (16 queries per
	// POST /search/batch), or "cross" (single with the cross-query σ
	// cache enabled).
	Mode string `json:"mode"`
	// Requests and Queries count completed work; batch requests carry
	// several queries each.
	Requests int64 `json:"requests"`
	Queries  int64 `json:"queries"`
	// QPS is achieved queries per second over the measured window.
	QPS float64 `json:"qps"`
	// P50/P99 are per-request latencies in microseconds.
	P50Micros int64 `json:"p50_us"`
	P99Micros int64 `json:"p99_us"`
	// ShedRate is the fraction of HTTP requests answered 429 (always 0
	// in-process: there is no admission gate to shed from).
	ShedRate float64 `json:"shed_rate"`
	// CrossHitRate is the cross-query σ cache hit ratio over the cell
	// (0 outside cross mode).
	CrossHitRate float64 `json:"cross_hit_rate"`
}

// ThroughputResult holds the full sweep plus the load shape that produced
// it; JSON() serializes it as the BENCH_throughput.json trajectory record.
type ThroughputResult struct {
	Tables      int             `json:"tables"`
	QuerySet    int             `json:"query_set"`
	Concurrency int             `json:"concurrency"`
	TargetQPS   float64         `json:"target_qps"`
	WindowSecs  float64         `json:"window_secs"`
	BatchSize   int             `json:"batch_size"`
	Rows        []ThroughputRow `json:"rows"`
}

// loadStats is what one closed-loop run measures.
type loadStats struct {
	latencies []time.Duration
	requests  int64
	queries   int64
	shed      int64
	elapsed   time.Duration
}

// runClosedLoop drives do from conc workers for window. Each worker issues
// the next request as soon as its previous one returns (closed loop); a
// positive qps caps the aggregate issue rate with a token ticker instead.
// do receives a monotonically increasing request number and reports how
// many queries the request answered and whether it was shed.
func runClosedLoop(conc int, qps float64, window time.Duration, do func(n int64) (queries int, shed bool)) loadStats {
	var (
		next    atomic.Int64
		mu      sync.Mutex
		out     loadStats
		tokens  chan struct{}
		stopTok = func() {}
	)
	if qps > 0 {
		tokens = make(chan struct{}, conc)
		tick := time.NewTicker(time.Duration(float64(time.Second) / qps))
		done := make(chan struct{})
		stopTok = func() { tick.Stop(); close(done) }
		go func() {
			for {
				select {
				case <-done:
					return
				case <-tick.C:
					select {
					case tokens <- struct{}{}:
					default: // generator ahead of the workers; drop the token
					}
				}
			}
		}()
	}
	deadline := time.Now().Add(window)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lat []time.Duration
			var reqs, qs, shed int64
			for time.Now().Before(deadline) {
				if tokens != nil {
					select {
					case <-tokens:
					case <-time.After(time.Until(deadline)):
						continue
					}
				}
				t0 := time.Now()
				nq, wasShed := do(next.Add(1) - 1)
				lat = append(lat, time.Since(t0))
				reqs++
				if wasShed {
					shed++
				} else {
					qs += int64(nq)
				}
			}
			mu.Lock()
			out.latencies = append(out.latencies, lat...)
			out.requests += reqs
			out.queries += qs
			out.shed += shed
			mu.Unlock()
		}()
	}
	wg.Wait()
	stopTok()
	out.elapsed = time.Since(start)
	return out
}

// pctl returns the p-th percentile (0..1) of a latency sample.
func pctl(lat []time.Duration, p float64) time.Duration {
	if len(lat) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), lat...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

// buildThroughputSystem assembles a root-level System over the benchmark
// corpus: type-Jaccard σ and the default LSEI, the stack thetisd serves.
func buildThroughputSystem(env *Env) *thetis.System {
	sys := thetis.New(env.KG.Graph)
	for id := 0; id < env.Lake.NumTables(); id++ {
		sys.AddTable(env.Lake.Table(thetis.TableID(id)))
	}
	sys.UseTypeSimilarity()
	sys.BuildIndex(thetis.DefaultIndexConfig())
	return sys
}

// throughputQueries renders the benchmark queries both as parsed Query
// values (in-process target) and as POST /search body text (HTTP target).
func throughputQueries(env *Env) (parsed []core.Query, texts []string) {
	g := env.KG.Graph
	for _, set := range [][]datagen.BenchmarkQuery{env.Queries1, env.Queries5} {
		for _, bq := range set {
			var tuples []string
			for _, tuple := range bq.Query {
				uris := make([]string, len(tuple))
				for i, e := range tuple {
					uris[i] = g.URI(e)
				}
				tuples = append(tuples, strings.Join(uris, " | "))
			}
			parsed = append(parsed, bq.Query)
			texts = append(texts, strings.Join(tuples, "; "))
		}
	}
	return parsed, texts
}

// RunThroughput sweeps target × mode under the configured load shape and
// reports achieved QPS, latency percentiles, shed rate, and cache hit
// ratios per cell (benchrunner -exp throughput).
func RunThroughput(env *Env) ThroughputResult {
	const topK = 10
	conc := env.Config.Concurrency
	if conc < 1 {
		conc = 8
	}
	window := env.Config.LoadWindow
	if window <= 0 {
		window = 2 * time.Second
	}
	qps := env.Config.QPS

	sys := buildThroughputSystem(env)
	queries, texts := throughputQueries(env)
	out := ThroughputResult{
		Tables:      env.Lake.NumTables(),
		QuerySet:    len(queries),
		Concurrency: conc,
		TargetQPS:   qps,
		WindowSecs:  window.Seconds(),
		BatchSize:   throughputBatchSize,
	}

	// Per-request work for each mode. Batch requests take the next
	// batchSize queries round-robin so every query keeps appearing.
	nextQ := func(n int64) int { return int(n % int64(len(queries))) }
	inprocSingle := func(n int64) (int, bool) {
		sys.SearchStatsContext(context.Background(), queries[nextQ(n)], topK)
		return 1, false
	}
	inprocBatch := func(n int64) (int, bool) {
		batch := make([]thetis.Query, throughputBatchSize)
		base := n * throughputBatchSize
		for i := range batch {
			batch[i] = queries[nextQ(base+int64(i))]
		}
		sys.SearchBatchContext(context.Background(), batch, topK)
		return len(batch), false
	}

	ts := httptest.NewServer(server.New(sys,
		server.WithSearchTimeout(10*time.Second),
		server.WithMaxInFlight(conc)))
	defer ts.Close()
	client := &http.Client{}
	post := func(path, body string) (status int) {
		resp, err := client.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			return 0
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	httpSingle := func(n int64) (int, bool) {
		body, _ := json.Marshal(map[string]any{"query": texts[nextQ(n)], "k": topK})
		return 1, post("/search", string(body)) == http.StatusTooManyRequests
	}
	httpBatch := func(n int64) (int, bool) {
		batch := make([]string, throughputBatchSize)
		base := n * throughputBatchSize
		for i := range batch {
			batch[i] = texts[nextQ(base+int64(i))]
		}
		body, _ := json.Marshal(map[string]any{"queries": batch, "k": topK})
		return len(batch), post("/search/batch", string(body)) == http.StatusTooManyRequests
	}

	type cell struct {
		target, mode string
		cross        bool
		do           func(int64) (int, bool)
	}
	cells := []cell{
		{"inproc", "single", false, inprocSingle},
		{"inproc", "batch", false, inprocBatch},
		{"inproc", "cross", true, inprocSingle},
		{"http", "single", false, httpSingle},
		{"http", "batch", false, httpBatch},
		{"http", "cross", true, httpSingle},
	}
	for _, c := range cells {
		var before thetis.CrossCacheStats
		if c.cross {
			// 64 MiB comfortably holds the benchmark's σ working set; the
			// point of the cell is the steady-state hit ratio.
			sys.EnableCrossCache(64 << 20)
			before, _ = sys.CrossCacheStats()
		}
		st := runClosedLoop(conc, qps, window, c.do)
		row := ThroughputRow{
			Target:    c.target,
			Mode:      c.mode,
			Requests:  st.requests,
			Queries:   st.queries,
			QPS:       float64(st.queries) / st.elapsed.Seconds(),
			P50Micros: pctl(st.latencies, 0.50).Microseconds(),
			P99Micros: pctl(st.latencies, 0.99).Microseconds(),
		}
		if st.requests > 0 {
			row.ShedRate = float64(st.shed) / float64(st.requests)
		}
		if c.cross {
			after, _ := sys.CrossCacheStats()
			if d := (after.Hits - before.Hits) + (after.Misses - before.Misses); d > 0 {
				row.CrossHitRate = float64(after.Hits-before.Hits) / float64(d)
			}
			sys.DisableCrossCache()
		}
		out.Rows = append(out.Rows, row)
	}
	return out
}

// Render prints the sweep.
func (r ThroughputResult) Render(w io.Writer) {
	renderHeader(w, "Throughput: closed-loop load, single vs batch vs cross-cache, in-process and over HTTP")
	shape := "unpaced"
	if r.TargetQPS > 0 {
		shape = fmt.Sprintf("%.0f req/s cap", r.TargetQPS)
	}
	fmt.Fprintf(w, "%d tables, %d distinct queries, %d workers (%s), %.1fs per cell, batch size %d\n\n",
		r.Tables, r.QuerySet, r.Concurrency, shape, r.WindowSecs, r.BatchSize)
	tw := newTabWriter(w)
	fmt.Fprintln(tw, "Target\tMode\tRequests\tQueries\tQPS\tP50\tP99\tShed\tCross hit")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%.0f\t%v\t%v\t%.1f%%\t%.1f%%\n",
			row.Target, row.Mode, row.Requests, row.Queries, row.QPS,
			time.Duration(row.P50Micros)*time.Microsecond,
			time.Duration(row.P99Micros)*time.Microsecond,
			100*row.ShedRate, 100*row.CrossHitRate)
	}
	tw.Flush()
}

// JSON serializes the machine-readable trajectory record
// (BENCH_throughput.json).
func (r ThroughputResult) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}
