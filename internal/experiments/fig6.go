package experiments

import (
	"fmt"
	"io"

	"thetis/internal/datagen"
	"thetis/internal/lake"
	"thetis/internal/metrics"
)

// Fig6Point is one box of Figure 6: the NDCG@10 distribution at one link-
// coverage cap.
type Fig6Point struct {
	Method      string
	Tuples      int
	CoverageCap float64
	Summary     metrics.Summary
}

// Fig6Result regenerates Figure 6 (NDCG@10 when decreasing entity-link
// coverage): retrieve the top-1000 tables, keep only those with link
// coverage at most the cap, and evaluate NDCG on the top-10 of the
// remainder.
type Fig6Result struct {
	Points []Fig6Point
}

// Fig6Caps are the coverage upper bounds swept by the figure.
var Fig6Caps = []float64{0.2, 0.4, 0.6, 0.8, 1.0}

// RunFig6 sweeps the coverage caps for STST and STSE on both query sizes.
func RunFig6(env *Env) Fig6Result {
	m := NewMethods(env)
	// Precompute per-table coverage once.
	coverage := make([]float64, env.Lake.NumTables())
	for id, t := range env.Lake.Tables() {
		coverage[id] = t.LinkCoverage()
	}

	var out Fig6Result
	for _, tuples := range []int{1, 5} {
		queries := env.QuerySet(tuples)
		for _, kind := range []SimKind{SimTypes, SimEmbeddings} {
			r := m.SemanticBrute(kind)
			// Retrieve once per query at depth 1000, then post-filter per cap.
			type ranked struct {
				bq   datagen.BenchmarkQuery
				tops []int
			}
			rankings := make([]ranked, 0, len(queries))
			for _, bq := range queries {
				tops, _ := r.Search(bq, 1000)
				rankings = append(rankings, ranked{bq: bq, tops: tops})
			}
			for _, cap := range Fig6Caps {
				sample := make([]float64, 0, len(rankings))
				for _, rk := range rankings {
					kept := make([]int, 0, len(rk.tops))
					for _, id := range rk.tops {
						if coverage[lake.TableID(id)] <= cap+1e-9 {
							kept = append(kept, id)
						}
					}
					gt := env.GT[rk.bq.Name]
					sample = append(sample, metrics.NDCG(kept, gt.Grades, 10))
				}
				out.Points = append(out.Points, Fig6Point{
					Method:      r.Name,
					Tuples:      tuples,
					CoverageCap: cap,
					Summary:     metrics.Summarize(sample),
				})
			}
		}
	}
	return out
}

// Render prints one line per box.
func (r Fig6Result) Render(w io.Writer) {
	renderHeader(w, "Figure 6: NDCG@10 when decreasing entity-link coverage")
	tw := newTabWriter(w)
	fmt.Fprintln(tw, "Method\tTuples\tCoverage cap\tNDCG@10 distribution")
	for _, p := range r.Points {
		fmt.Fprintf(tw, "%s\t%d\t<=%s\t%s\n", p.Method, p.Tuples, fmtPct(p.CoverageCap), fmtSummary(p.Summary))
	}
	tw.Flush()
}

// Mean returns the mean NDCG at a grid point, or -1 when absent.
func (r Fig6Result) Mean(method string, tuples int, cap float64) float64 {
	for _, p := range r.Points {
		if p.Method == method && p.Tuples == tuples && p.CoverageCap == cap {
			return p.Summary.Mean
		}
	}
	return -1
}
