package experiments

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"thetis/internal/core"
	"thetis/internal/datagen"
)

// The shared small environment is expensive enough to build once.
var (
	envOnce sync.Once
	testEnv *Env
)

func sharedEnv(t *testing.T) *Env {
	t.Helper()
	envOnce.Do(func() {
		testEnv = NewEnv(SmallConfig(), nil)
	})
	return testEnv
}

func TestNewEnvShape(t *testing.T) {
	env := sharedEnv(t)
	if env.Lake.NumTables() != env.Config.Tables {
		t.Errorf("tables = %d, want %d", env.Lake.NumTables(), env.Config.Tables)
	}
	if len(env.Queries1) != len(env.Queries5) || len(env.Queries5) != env.Config.Queries {
		t.Errorf("queries = %d/%d, want %d", len(env.Queries1), len(env.Queries5), env.Config.Queries)
	}
	for i := range env.Queries1 {
		if len(env.Queries1[i].Query) != 1 || len(env.Queries5[i].Query) != 5 {
			t.Fatal("query sizes wrong")
		}
		if _, ok := env.GT[env.Queries5[i].Name]; !ok {
			t.Fatal("missing ground truth")
		}
	}
	if env.Store.Len() == 0 {
		t.Error("no embeddings trained")
	}
}

func TestTable2ProfilesOrdered(t *testing.T) {
	env := sharedEnv(t)
	res := RunTable2(env)
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	byName := map[string]Table2Row{}
	for _, r := range res.Rows {
		byName[r.Name] = r
	}
	// Corpus-size ordering of Table 2: WT2015 < WT2019 < GitTables < Synthetic.
	if !(byName["WT 2015"].Tables < byName["WT 2019"].Tables &&
		byName["WT 2019"].Tables < byName["GitTables"].Tables &&
		byName["GitTables"].Tables < byName["Synthetic"].Tables) {
		t.Errorf("corpus sizes out of order: %+v", res.Rows)
	}
	// Coverage ordering: WT2019 lowest of the Wiki profiles.
	if byName["WT 2019"].MeanCoverage >= byName["WT 2015"].MeanCoverage {
		t.Errorf("WT2019 coverage %v >= WT2015 %v",
			byName["WT 2019"].MeanCoverage, byName["WT 2015"].MeanCoverage)
	}
	// GitTables has the largest tables.
	if byName["GitTables"].MeanRows <= byName["WT 2015"].MeanRows {
		t.Error("GitTables should have larger tables")
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "GitTables") {
		t.Error("render missing rows")
	}
}

// The headline shape of Figure 4: semantic search and BM25 are comparable;
// union/join/TURL baselines are far worse.
func TestFig4Shape(t *testing.T) {
	env := sharedEnv(t)
	res := RunFig4(env)

	for _, tuples := range []int{1, 5} {
		stst := res.Mean("STST", tuples)
		stse := res.Mean("STSE", tuples)
		union := res.Mean("Union", tuples)
		unionE := res.Mean("UnionE", tuples)
		join := res.Mean("Join", tuples)
		turl := res.Mean("TURL", tuples)
		if stst <= 0 || stse <= 0 {
			t.Fatalf("tuples=%d: semantic NDCG not positive: STST=%v STSE=%v", tuples, stst, stse)
		}
		// Baselines must be clearly dominated. The paper reports orders of
		// magnitude on 238K tables; at test-corpus scale we require every
		// baseline at least 25% below semantic search, and the union/TURL
		// baselines (the figure's weakest) at least 2x below.
		for name, v := range map[string]float64{"Union": union, "UnionE": unionE, "Join": join, "TURL": turl} {
			if v > stst*0.75 && v > stse*0.75 {
				t.Errorf("tuples=%d: baseline %s NDCG %v not dominated by STST %v / STSE %v",
					tuples, name, v, stst, stse)
			}
		}
		for name, v := range map[string]float64{"Union": union, "UnionE": unionE, "TURL": turl} {
			if v > stst/2 && v > stse/2 {
				t.Errorf("tuples=%d: baseline %s NDCG %v not far below STST %v / STSE %v",
					tuples, name, v, stst, stse)
			}
		}
		// LSH configurations achieve NDCG comparable to brute force
		// (within 25% of it — the paper reports "equivalent").
		for _, cfg := range []string{"T(32,8)", "T(128,8)", "T(30,10)"} {
			if v := res.Mean(cfg, tuples); v < stst*0.75 {
				t.Errorf("tuples=%d: %s NDCG %v much worse than brute force %v", tuples, cfg, v, stst)
			}
		}
		for _, cfg := range []string{"E(32,8)", "E(128,8)", "E(30,10)"} {
			if v := res.Mean(cfg, tuples); v < stse*0.75 {
				t.Errorf("tuples=%d: %s NDCG %v much worse than brute force %v", tuples, cfg, v, stse)
			}
		}
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "STST") {
		t.Error("render missing series")
	}
}

// The headline shape of Figure 5: complementing BM25 with semantic search
// improves recall over BM25 alone.
func TestFig5ComplementImprovesRecall(t *testing.T) {
	env := sharedEnv(t)
	res := RunFig5(env)
	for _, tuples := range []int{1, 5} {
		for _, k := range []int{100, 200} {
			bm := res.Median("BM25text", tuples, k)
			ststc := res.Median("STSTC", tuples, k)
			stsec := res.Median("STSEC", tuples, k)
			if ststc < bm-1e-9 && stsec < bm-1e-9 {
				t.Errorf("tuples=%d k=%d: complemented recall (%v/%v) below BM25 alone (%v)",
					tuples, k, ststc, stsec, bm)
			}
		}
	}
}

// Tables 3 and 4 shape: prefiltering reduces candidates and does not slow
// search down; 3 votes prune at least as much as 1 vote.
func TestTable34Shape(t *testing.T) {
	env := sharedEnv(t)
	res := RunTable34(env)
	for _, tuples := range []int{1, 5} {
		brute, ok := res.Cell("STST", tuples, 0)
		if !ok {
			t.Fatal("missing brute-force cell")
		}
		if brute.Reduction != 0 {
			t.Errorf("brute force reduction = %v, want 0", brute.Reduction)
		}
		for _, method := range []string{"T(32,8)", "T(128,8)", "T(30,10)"} {
			v1, ok1 := res.Cell(method, tuples, 1)
			v3, ok3 := res.Cell(method, tuples, 3)
			if !ok1 || !ok3 {
				t.Fatalf("missing cells for %s", method)
			}
			if v1.Reduction <= 0 {
				t.Errorf("%s tuples=%d: no search-space reduction", method, tuples)
			}
			if v3.Reduction < v1.Reduction-1e-9 {
				t.Errorf("%s tuples=%d: 3 votes reduced less (%v) than 1 vote (%v)",
					method, tuples, v3.Reduction, v1.Reduction)
			}
		}
	}
	var buf bytes.Buffer
	res.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "Table 3") || !strings.Contains(out, "Table 4") {
		t.Error("render missing tables")
	}
}

// Figure 6 shape: NDCG decreases (weakly) as the coverage cap tightens, and
// is still positive at the 40% cap.
func TestFig6Shape(t *testing.T) {
	env := sharedEnv(t)
	res := RunFig6(env)
	for _, tuples := range []int{1, 5} {
		for _, method := range []string{"STST", "STSE"} {
			full := res.Mean(method, tuples, 1.0)
			low := res.Mean(method, tuples, 0.4)
			if full < 0 || low < 0 {
				t.Fatalf("missing points for %s", method)
			}
			if low > full+1e-9 {
				t.Errorf("%s tuples=%d: NDCG at 40%% cap (%v) exceeds uncapped (%v)",
					method, tuples, low, full)
			}
		}
	}
}

// Aggregation ablation shape: MAX >= AVG on NDCG (the paper: up to 5x).
func TestAggregationAblationShape(t *testing.T) {
	env := sharedEnv(t)
	res := RunAggregationAblation(env)
	for _, tuples := range []int{1, 5} {
		for _, method := range []string{"STST", "STSE"} {
			mx := res.Mean(method, tuples, core.AggregateMax)
			av := res.Mean(method, tuples, core.AggregateAvg)
			if mx < av-1e-9 {
				t.Errorf("%s tuples=%d: MAX %v < AVG %v", method, tuples, mx, av)
			}
		}
	}
}

func TestOverlapRunsAndRenders(t *testing.T) {
	env := sharedEnv(t)
	res := RunOverlap(env)
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Summary.Max > 100 {
			t.Errorf("set difference %v exceeds depth 100", row.Summary.Max)
		}
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if buf.Len() == 0 {
		t.Error("empty render")
	}
}

func TestScoringMicrobench(t *testing.T) {
	env := sharedEnv(t)
	res := RunScoring(env)
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.MeanPerTable <= 0 {
			t.Errorf("%s tuples=%d: non-positive per-table time", row.Method, row.Tuples)
		}
		if row.MappingFraction <= 0 || row.MappingFraction > 1 {
			t.Errorf("%s tuples=%d: mapping fraction %v out of (0,1]", row.Method, row.Tuples, row.MappingFraction)
		}
	}
}

func TestBM25FilterAblation(t *testing.T) {
	env := sharedEnv(t)
	res := RunBM25FilterAblation(env)
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if buf.Len() == 0 {
		t.Error("empty render")
	}
}

func TestScalingShape(t *testing.T) {
	env := sharedEnv(t)
	res := RunScaling(env)
	// Runtime should grow (weakly) with corpus size per method/tuples.
	type key struct {
		method string
		tuples int
	}
	sizes := map[key][]int{}
	for _, row := range res.Rows {
		k := key{row.Method, row.Tuples}
		sizes[k] = append(sizes[k], row.Tables)
		if row.Reduction < 0 || row.Reduction > 1 {
			t.Errorf("reduction %v out of range", row.Reduction)
		}
	}
	for k, s := range sizes {
		if len(s) != len(ScalingFactors) {
			t.Errorf("%v: %d corpus sizes, want %d", k, len(s), len(ScalingFactors))
		}
		for i := 1; i < len(s); i++ {
			if s[i] <= s[i-1] {
				t.Errorf("%v: corpus sizes not increasing: %v", k, s)
			}
		}
	}
}

func TestWT2019Shape(t *testing.T) {
	env := sharedEnv(t)
	res := RunWT2019(env)
	if res.Tables <= env.Config.Tables {
		t.Errorf("WT2019 corpus (%d) not larger than base (%d)", res.Tables, env.Config.Tables)
	}
	if res.Coverage >= 0.277 {
		t.Errorf("WT2019 coverage %v not lower than WT2015's 27.7%%", res.Coverage)
	}
	for _, row := range res.Rows {
		if row.MeanNDCG <= 0 {
			t.Errorf("%s tuples=%d: NDCG %v not positive at low coverage", row.Method, row.Tuples, row.MeanNDCG)
		}
	}
}

func TestGitTablesShape(t *testing.T) {
	env := sharedEnv(t)
	res := RunGitTables(env)
	if res.MeanRows < 50 {
		t.Errorf("GitTables profile mean rows = %v, want large tables", res.MeanRows)
	}
	for _, row := range res.Rows {
		if row.Reduction <= 0 {
			t.Errorf("%s: no reduction on GitTables profile", row.Method)
		}
		if row.MeanTime <= 0 {
			t.Errorf("%s: bad time", row.Method)
		}
	}
}

func TestNoisyLinkShape(t *testing.T) {
	env := sharedEnv(t)
	res := RunNoisyLink(env)
	if res.F1 >= 1 {
		t.Errorf("noisy linker F1 = %v, should be degraded", res.F1)
	}
	if res.F1 <= 0 {
		t.Errorf("noisy linker F1 = %v, should retain some quality", res.F1)
	}
	positive := 0
	for _, row := range res.Rows {
		if row.MeanNDCG > 0 {
			positive++
		}
	}
	if positive == 0 {
		t.Error("no method retrieved anything under the noisy linker")
	}
}

func TestRunRegistry(t *testing.T) {
	env := sharedEnv(t)
	ids := ExperimentIDs()
	if len(ids) != 24 {
		t.Errorf("experiment IDs = %v", ids)
	}
	var buf bytes.Buffer
	if err := Run(env, "table2", &buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Error("Run produced no output")
	}
	if err := Run(env, "nope", &buf); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestScoreModeAblation(t *testing.T) {
	env := sharedEnv(t)
	res := RunScoreModeAblation(env)
	if len(res.Rows) != 8 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Summary.Mean <= 0 {
			t.Errorf("%s tuples=%d mode=%v: NDCG not positive", row.Method, row.Tuples, row.Mode)
		}
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "pairwise") {
		t.Error("render missing modes")
	}
}

func TestMappingAblationShape(t *testing.T) {
	env := sharedEnv(t)
	res := RunMappingAblation(env)
	if len(res.Rows) != 8 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Hungarian should not be clearly worse than greedy on quality.
	for _, tuples := range []int{1, 5} {
		for _, method := range []string{"STST", "STSE"} {
			h := res.Mean(method, tuples, core.MappingHungarian)
			g := res.Mean(method, tuples, core.MappingGreedy)
			if h < g*0.95 {
				t.Errorf("%s tuples=%d: hungarian NDCG %v well below greedy %v", method, tuples, h, g)
			}
		}
	}
}

func TestQueryAggAblation(t *testing.T) {
	env := sharedEnv(t)
	res := RunQueryAggAblation(env)
	if len(res.Rows) != 8 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Reduction < 0 || row.Reduction > 1 {
			t.Errorf("reduction out of range: %+v", row)
		}
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if buf.Len() == 0 {
		t.Error("empty render")
	}
}

func TestInformativenessAblation(t *testing.T) {
	env := sharedEnv(t)
	res := RunInformativenessAblation(env)
	if len(res.Rows) != 8 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Summary.Mean <= 0 {
			t.Errorf("%s/%s tuples=%d: NDCG not positive", row.Method, row.Weighting, row.Tuples)
		}
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "uniform") {
		t.Error("render missing weightings")
	}
}

func TestWalkAblation(t *testing.T) {
	env := sharedEnv(t)
	res := RunWalkAblation(env)
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.MeanNDCG <= 0 {
			t.Errorf("tuples=%d walks=%s: NDCG not positive", row.Tuples, row.Walks)
		}
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if buf.Len() == 0 {
		t.Error("empty render")
	}
}

func TestNewEnvFromBenchmark(t *testing.T) {
	// Write a tiny benchmark and replay an experiment on it.
	k := datagen.GenerateKG(datagen.KGConfig{
		Domains: 2, LeafTypesPerDomain: 2, MembersPerLeafType: 20,
		GroupsPerDomain: 4, Places: 8, EdgesPerMember: 2, Seed: 3,
	})
	l := datagen.GenerateCorpus(k, datagen.ProfileWT2015(60))
	qs := datagen.GenerateQueries(k, datagen.QueryConfig{Count: 3, TuplesPerQuery: 5, Width: 3, Seed: 3})
	dir := t.TempDir()
	if err := datagen.WriteBenchmark(dir, k.Graph, l, qs); err != nil {
		t.Fatal(err)
	}
	cfg := SmallConfig()
	env, err := NewEnvFromBenchmark(dir, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if env.Lake.NumTables() != 60 || len(env.Queries5) != 3 {
		t.Fatalf("loaded env shape: %d tables, %d queries", env.Lake.NumTables(), len(env.Queries5))
	}
	res := RunTable2(env)
	if len(res.Rows) != 2 {
		t.Errorf("replayed Table 2 rows = %d, want 2 (loaded + synthetic)", len(res.Rows))
	}
	// Generation-dependent experiments degrade gracefully on replayed envs.
	if rows := RunWT2019(env).Rows; len(rows) != 0 {
		t.Errorf("WT2019 on replayed env produced rows: %v", rows)
	}
	var buf bytes.Buffer
	RunWT2019(env).Render(&buf)
	if !strings.Contains(buf.String(), "skipped") {
		t.Error("WT2019 skip notice missing")
	}
	if _, _, _, err := datagen.LoadBenchmark(t.TempDir()); err == nil {
		t.Error("empty benchmark dir accepted")
	}
}
