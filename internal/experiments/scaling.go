package experiments

import (
	"fmt"
	"io"
	"time"

	"thetis/internal/core"
	"thetis/internal/datagen"
	"thetis/internal/lake"
)

// toTableIDs converts raw int32 document IDs to lake table IDs.
func toTableIDs(docs []int32) []lake.TableID {
	out := make([]lake.TableID, len(docs))
	for i, d := range docs {
		out[i] = lake.TableID(d)
	}
	return out
}

// ScalingRow is one corpus size of the synthetic scaling experiment.
type ScalingRow struct {
	Corpus    string
	Tables    int
	Tuples    int
	Method    string
	MeanTime  time.Duration
	Reduction float64
}

// ScalingResult regenerates the synthetic-dataset scaling experiment of
// Section 7.4: three corpora built by row-resampling expansion of the base
// corpus (the paper's 0.7M/1.2M/1.7M sweep, scaled), searched with LSH
// (30,10) prefiltering using types and embeddings. The expected shape is a
// linear runtime increase with corpus size and a stable reduction
// percentage, with types prefiltering more aggressively than embeddings.
type ScalingResult struct {
	Rows []ScalingRow
}

// ScalingFactors are the expansion factors applied to the base corpus,
// preserving the paper's ~1 : 1.7 : 2.4 corpus-size ratios.
var ScalingFactors = []int{2, 4, 6}

// RunScaling expands the base corpus and measures search runtimes.
func RunScaling(env *Env) ScalingResult {
	var out ScalingResult
	cfg := core.LSEIConfig{Vectors: 30, BandSize: 10, Seed: 1}
	for _, factor := range ScalingFactors {
		big := datagen.ExpandCorpus(env.Lake, factor, int64(1000+factor))
		name := fmt.Sprintf("%dx", 1+factor)
		tj := env.TJ
		ec := env.EC
		typeLSEI := core.BuildTypeLSEI(big, tj, cfg)
		embLSEI := core.BuildEmbeddingLSEI(big, ec, env.Store.Dim(), cfg)

		for _, tuples := range []int{1, 5} {
			queries := env.QuerySet(tuples)
			for _, kind := range []SimKind{SimTypes, SimEmbeddings} {
				var eng *core.Engine
				var lsei *core.LSEI
				if kind == SimEmbeddings {
					eng = core.NewEngine(big, ec)
					lsei = embLSEI
				} else {
					eng = core.NewEngine(big, tj)
					lsei = typeLSEI
				}
				var total time.Duration
				var reduction float64
				for _, bq := range queries {
					start := time.Now()
					cands := lsei.Candidates(bq.Query, 3)
					eng.SearchCandidates(bq.Query, cands, 10)
					total += time.Since(start)
					reduction += lsei.Reduction(cands)
				}
				n := time.Duration(len(queries))
				out.Rows = append(out.Rows, ScalingRow{
					Corpus: name, Tables: big.NumTables(), Tuples: tuples,
					Method:   fmt.Sprintf("%v(30,10)", kind),
					MeanTime: total / n, Reduction: reduction / float64(len(queries)),
				})
			}
		}
	}
	return out
}

// Render prints the scaling sweep.
func (r ScalingResult) Render(w io.Writer) {
	renderHeader(w, "Synthetic scaling: runtime vs corpus size, LSH(30,10)")
	tw := newTabWriter(w)
	fmt.Fprintln(tw, "Corpus\tTables\tTuples\tMethod\tMean time\tReduction")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%s\t%v\t%s\n",
			row.Corpus, row.Tables, row.Tuples, row.Method,
			row.MeanTime.Round(time.Microsecond), fmtPct(row.Reduction))
	}
	tw.Flush()
}
