package experiments

import (
	"fmt"
	"io"

	"thetis/internal/metrics"
)

// Fig4Series is one box of Figure 4: the NDCG@10 distribution of one method
// on one query size.
type Fig4Series struct {
	Method  string
	Tuples  int // 1 or 5
	Summary metrics.Summary
}

// Fig4Result regenerates Figure 4 (NDCG at top-10): brute-force semantic
// search with types (STST) and embeddings (STSE), the three LSH
// configurations per similarity, BM25 text queries, and the union-search
// baseline, plus the prose-reported TURL and join-search (D³L-stand-in)
// numbers.
type Fig4Result struct {
	Series []Fig4Series
}

// RunFig4 evaluates NDCG@10 for every Figure 4 method on both query sizes.
// LSH methods use a 1-vote threshold, matching the figure's setup.
func RunFig4(env *Env) Fig4Result {
	m := NewMethods(env)
	runners := []Runner{
		m.SemanticBrute(SimTypes),
		m.SemanticBrute(SimEmbeddings),
	}
	for _, cfg := range PaperLSHConfigs() {
		runners = append(runners, m.SemanticLSH(SimTypes, cfg, 1))
	}
	for _, cfg := range PaperLSHConfigs() {
		runners = append(runners, m.SemanticLSH(SimEmbeddings, cfg, 1))
	}
	runners = append(runners, m.BM25Text(), m.UnionSearch(), m.StarmieUnion(), m.JoinSearch(), m.TURL())

	var out Fig4Result
	for _, tuples := range []int{1, 5} {
		queries := env.QuerySet(tuples)
		for _, r := range runners {
			sample := evalNDCG(env, r, queries, 10)
			out.Series = append(out.Series, Fig4Series{
				Method:  r.Name,
				Tuples:  tuples,
				Summary: metrics.Summarize(sample),
			})
		}
	}
	return out
}

// Render prints one line per box of the figure.
func (r Fig4Result) Render(w io.Writer) {
	renderHeader(w, "Figure 4: NDCG@10 (brute force, LSH configs, baselines)")
	tw := newTabWriter(w)
	fmt.Fprintln(tw, "Method\tTuples\tNDCG@10 distribution")
	for _, s := range r.Series {
		fmt.Fprintf(tw, "%s\t%d\t%s\n", s.Method, s.Tuples, fmtSummary(s.Summary))
	}
	tw.Flush()
}

// Mean returns the mean NDCG of a method/tuples pair, or -1 when absent
// (used by tests and EXPERIMENTS.md generation).
func (r Fig4Result) Mean(method string, tuples int) float64 {
	for _, s := range r.Series {
		if s.Method == method && s.Tuples == tuples {
			return s.Summary.Mean
		}
	}
	return -1
}
