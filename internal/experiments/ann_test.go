package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestANNThresholds is the anncheck acceptance gate: at the serving
// operating point (k=10, efSearch=64) the HNSW index must recover at least
// 95% of the exact nearest neighbors, and the top-k σ ranking must stay
// within 0.02 NDCG@10 of the exact σ ranking.
func TestANNThresholds(t *testing.T) {
	env := sharedEnv(t)
	res := RunANN(env)

	if res.GraphNodes == 0 || res.GraphNodes > env.Store.Len() {
		t.Fatalf("graph nodes = %d, store len = %d", res.GraphNodes, env.Store.Len())
	}
	if res.Entities == 0 {
		t.Fatal("no probe entities")
	}
	if res.Recall10 < 0.95 {
		t.Errorf("recall@10 (ef=64) = %.4f, want >= 0.95", res.Recall10)
	}
	if res.Drift10 > 0.02 {
		t.Errorf("NDCG@10 drift (k=10, ef=64) = %.4f, want <= 0.02", res.Drift10)
	}

	// efSearch is the recall knob: the swept k=10 rows must not lose recall
	// as ef grows (allowing a tiny measurement slack).
	var prev float64
	for _, row := range res.Rows {
		if row.K != 10 {
			continue
		}
		if row.Recall < prev-0.01 {
			t.Errorf("recall@10 fell from %.4f to %.4f as ef grew to %d", prev, row.Recall, row.Ef)
		}
		prev = row.Recall
	}
}

func TestANNRenderAndJSON(t *testing.T) {
	env := sharedEnv(t)
	res := RunANN(env)

	var buf bytes.Buffer
	res.Render(&buf)
	out := buf.String()
	for _, want := range []string{"recall@k", "NDCG@10 drift", "speedup", "gate:"} {
		if !strings.Contains(out, want) {
			t.Errorf("render output missing %q:\n%s", want, out)
		}
	}

	raw, err := res.JSON()
	if err != nil {
		t.Fatalf("JSON: %v", err)
	}
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if doc["experiment"] != "ann" {
		t.Errorf("experiment = %v", doc["experiment"])
	}
	if _, ok := doc["sweep"].([]any); !ok {
		t.Errorf("sweep missing or not a list: %T", doc["sweep"])
	}
	if _, ok := doc["sigma_first_touch"].(map[string]any); !ok {
		t.Errorf("sigma_first_touch missing: %T", doc["sigma_first_touch"])
	}
}
