package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"
	"time"

	"thetis/internal/core"
	"thetis/internal/lake"
	"thetis/internal/shard"
)

// ShardsRow is one shard count of the scatter-gather sweep.
type ShardsRow struct {
	Shards int
	// Mean and P50 are per-query latencies through the Coordinator.
	Mean time.Duration
	P50  time.Duration
	// Delta is the relative overhead vs the direct unsharded path
	// (positive = slower than calling the engine directly).
	Delta float64
	// Identical reports whether every query's ranking — IDs and scores —
	// matched the direct path bit for bit.
	Identical bool
}

// ShardsResult measures scatter-gather serving (docs/SHARDING.md) against
// the direct single-engine path on the same corpus: the 1-shard row
// isolates pure coordinator overhead (goroutine hop + merge), higher
// counts show how partitioning shifts latency, and the Identical column
// checks the shard-count-invariance contract end to end.
//
// Direct/DirectP50 report the direct path as timed alongside the 1-shard
// row; every row's Delta is computed against its own interleaved direct
// measurement, so machine-level drift between rows cancels out.
type ShardsResult struct {
	Queries   int
	Direct    time.Duration
	DirectP50 time.Duration
	Rows      []ShardsRow
}

// shardSweep returns the shard counts to benchmark: powers of two from 1
// up to max (always at least [1]).
func shardSweep(max int) []int {
	counts := []int{1}
	for n := 2; n <= max; n *= 2 {
		counts = append(counts, n)
	}
	return counts
}

// pairedSweep times the direct and sharded paths back to back, per query,
// over reps full passes, keeping each query's fastest time per side.
// Interleaving the two paths on every query pairs their machine state
// (same idea as scripts/benchcheck.sh), and per-query minima discard
// one-off stalls (GC pauses, scheduler preemption) that would otherwise
// land on one side of a few-percent overhead comparison. The returned
// rankings come from the first pass — searches are deterministic, so any
// pass would do.
func pairedSweep(queries []core.Query, reps, k int, direct, sharded func(core.Query, int) []core.Result) (directBest, shardBest []time.Duration, directRanks, shardRanks [][]core.Result) {
	directBest = make([]time.Duration, len(queries))
	shardBest = make([]time.Duration, len(queries))
	for rep := 0; rep < reps; rep++ {
		for i, q := range queries {
			t0 := time.Now()
			dres := direct(q, k)
			dt := time.Since(t0)
			t1 := time.Now()
			sres := sharded(q, k)
			st := time.Since(t1)
			if rep == 0 {
				directBest[i], shardBest[i] = dt, st
				directRanks = append(directRanks, dres)
				shardRanks = append(shardRanks, sres)
				continue
			}
			if dt < directBest[i] {
				directBest[i] = dt
			}
			if st < shardBest[i] {
				shardBest[i] = st
			}
		}
	}
	return directBest, shardBest, directRanks, shardRanks
}

func sumDurations(ds []time.Duration) time.Duration {
	var total time.Duration
	for _, d := range ds {
		total += d
	}
	return total
}

func meanP50(times []time.Duration) (mean, p50 time.Duration) {
	sorted := append([]time.Duration(nil), times...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sumDurations(sorted) / time.Duration(len(sorted)), sorted[len(sorted)/2]
}

func sameRanking(a, b []core.Result) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Table != b[i].Table || a[i].Score != b[i].Score {
			return false
		}
	}
	return true
}

// RunShards benchmarks scatter-gather search against the direct path with
// type-Jaccard σ and LSH (30,10) prefiltering, votes=3, top-10, over the
// combined 1- and 5-tuple query sets.
func RunShards(env *Env) ShardsResult {
	const (
		votes = 3
		topK  = 10
		reps  = 3
	)
	cfg := core.LSEIConfig{Vectors: 30, BandSize: 10, Seed: 1}
	queries := make([]core.Query, 0, len(env.Queries1)+len(env.Queries5))
	for _, bq := range env.Queries1 {
		queries = append(queries, bq.Query)
	}
	for _, bq := range env.Queries5 {
		queries = append(queries, bq.Query)
	}

	// Direct reference: the exact pipeline System.SearchStatsContext runs,
	// including the empty-prefilter full-scan fallback the Coordinator
	// replaces with a rescatter.
	eng := env.EngineTypes()
	lsei := core.BuildTypeLSEI(env.Lake, env.TJ, cfg)
	direct := func(q core.Query, k int) []core.Result {
		res, _ := core.SearchWithIndex(context.Background(), eng, lsei, votes, q, k, core.FallbackFullScan)
		return res
	}

	out := ShardsResult{Queries: len(queries)}
	maxShards := env.Config.Shards
	if maxShards < 1 {
		maxShards = 4
	}
	for _, n := range shardSweep(maxShards) {
		coord := buildShardedDeployment(env, n, cfg, votes)
		directTimes, times, directRanks, ranks := pairedSweep(queries, reps, topK, direct, func(q core.Query, k int) []core.Result {
			res, _ := coord.Search(context.Background(), q, k)
			return res
		})
		identical := true
		for i := range ranks {
			if !sameRanking(ranks[i], directRanks[i]) {
				identical = false
				break
			}
		}
		directMean, directP50 := meanP50(directTimes)
		if n == 1 {
			out.Direct, out.DirectP50 = directMean, directP50
		}
		mean, p50 := meanP50(times)
		out.Rows = append(out.Rows, ShardsRow{
			Shards: n, Mean: mean, P50: p50,
			Delta:     float64(mean-directMean) / float64(directMean),
			Identical: identical,
		})
	}
	return out
}

// buildShardedDeployment hash-partitions the environment's corpus into n
// shard.Locals wired exactly like thetis.ShardedSystem wires them: global
// informativeness, global frequent-type filter, per-shard LSEI.
func buildShardedDeployment(env *Env, n int, cfg core.LSEIConfig, votes int) *shard.Coordinator {
	part := lake.NewHashPartitioner(n)
	locals := make([]*shard.Local, n)
	for i := range locals {
		locals[i] = shard.NewLocal(i, env.KG.Graph)
	}
	for id := 0; id < env.Lake.NumTables(); id++ {
		t := env.Lake.Table(lake.TableID(id))
		locals[part.Assign(t)].Add(t, lake.TableID(id))
	}
	lakes := make([]*lake.Lake, n)
	for i, sh := range locals {
		lakes[i] = sh.Lake()
	}
	inf := core.IDFInformativenessOver(lakes)
	filter := core.FrequentTypesOver(lakes, env.TJ, 0.5)
	searchers := make([]shard.Searcher, n)
	for i, sh := range locals {
		e := core.NewEngine(sh.Lake(), env.TJ)
		e.Inf = inf
		sh.SetEngine(e)
		sh.SetVotes(votes)
		sh.SetIndex(core.BuildTypeLSEIFiltered(sh.Lake(), env.TJ, cfg, filter))
		searchers[i] = sh
	}
	return shard.NewCoordinator(searchers...)
}

// Render prints the scatter-gather sweep.
func (r ShardsResult) Render(w io.Writer) {
	renderHeader(w, "Sharded scatter-gather: coordinator overhead and invariance, LSH(30,10) votes=3 top-10")
	fmt.Fprintf(w, "direct path: mean %v, p50 %v over %d queries (interleaved with each row, per-query best of 3 passes)\n\n",
		r.Direct.Round(time.Microsecond), r.DirectP50.Round(time.Microsecond), r.Queries)
	tw := newTabWriter(w)
	fmt.Fprintln(tw, "Shards\tMean\tP50\tΔ vs direct\tIdentical ranking")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%d\t%v\t%v\t%+.1f%%\t%v\n",
			row.Shards, row.Mean.Round(time.Microsecond), row.P50.Round(time.Microsecond),
			100*row.Delta, row.Identical)
	}
	tw.Flush()
}
