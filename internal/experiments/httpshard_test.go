package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestHTTPShardExperimentShape runs the shard-over-HTTP sweep on the small
// environment: every shard count must report a positive latency on both
// paths and a bit-identical remote ranking (the experiment doubles as a
// transport-level invariance check — faults are the battery's job).
func TestHTTPShardExperimentShape(t *testing.T) {
	env := sharedEnv(t)
	res := RunHTTPShard(env)
	if len(res.Rows) != 3 { // shards 1, 2, 4
		t.Fatalf("rows = %d, want 3", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.InProc <= 0 || row.Remote <= 0 {
			t.Errorf("shards=%d: non-positive latency %+v", row.Shards, row)
		}
		if !row.Identical {
			t.Errorf("shards=%d: remote ranking diverged from in-process", row.Shards)
		}
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "Shard-over-HTTP") {
		t.Error("render missing header")
	}
}
