package experiments

import (
	"fmt"
	"io"

	"thetis/internal/core"
	"thetis/internal/embedding"
	"thetis/internal/metrics"
)

// --- Informativeness ablation (Section 5.2) ---

// InformativenessRow is one (similarity, tuples, weighting) cell.
type InformativenessRow struct {
	Method    string
	Tuples    int
	Weighting string // "idf" or "uniform"
	Summary   metrics.Summary
}

// InformativenessResult quantifies the informativeness weighting I(e) of
// Section 5.2: corpus-frequency (IDF) weights versus uniform weights. The
// paper motivates I(e) with the ⟨Mitch Stetter, Milwaukee Brewers⟩ example
// (the player should matter more than the team) but does not ablate it.
type InformativenessResult struct {
	Rows []InformativenessRow
}

// RunInformativenessAblation evaluates both weightings on both query sizes.
func RunInformativenessAblation(env *Env) InformativenessResult {
	var out InformativenessResult
	for _, tuples := range []int{1, 5} {
		queries := env.QuerySet(tuples)
		for _, kind := range []SimKind{SimTypes, SimEmbeddings} {
			for _, weighting := range []string{"idf", "uniform"} {
				eng := engineFor(env, kind)
				if weighting == "uniform" {
					eng.Inf = core.UniformInformativeness
				}
				r := engineRunner(fmt.Sprintf("STS%v/%s", kind, weighting), eng)
				sample := evalNDCG(env, r, queries, 10)
				out.Rows = append(out.Rows, InformativenessRow{
					Method: fmt.Sprintf("STS%v", kind), Tuples: tuples,
					Weighting: weighting, Summary: metrics.Summarize(sample),
				})
			}
		}
	}
	return out
}

// Render prints the comparison.
func (r InformativenessResult) Render(w io.Writer) {
	renderHeader(w, "Ablation: informativeness weighting (corpus IDF vs uniform), NDCG@10")
	tw := newTabWriter(w)
	fmt.Fprintln(tw, "Method\tTuples\tWeighting\tNDCG@10 distribution")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%s\t%d\t%s\t%s\n", row.Method, row.Tuples, row.Weighting, fmtSummary(row.Summary))
	}
	tw.Flush()
}

// Mean returns the mean NDCG of a cell, or -1.
func (r InformativenessResult) Mean(method string, tuples int, weighting string) float64 {
	for _, row := range r.Rows {
		if row.Method == method && row.Tuples == tuples && row.Weighting == weighting {
			return row.Summary.Mean
		}
	}
	return -1
}

// --- Predicate-aware walk ablation (RDF2Vec fidelity) ---

// WalkAblationRow is one (tuples, walk style) cell of STSE quality.
type WalkAblationRow struct {
	Tuples   int
	Walks    string // "entities" or "entities+predicates"
	MeanNDCG float64
}

// WalkAblationResult compares STSE quality when embeddings are trained on
// entity-only walks versus RDF2Vec-style walks that interleave predicate
// tokens. Richer walk vocabularies usually sharpen entity similarity in
// KGs with heterogeneous relations.
type WalkAblationResult struct {
	Rows []WalkAblationRow
}

// RunWalkAblation trains a second embedding store with predicate-aware
// walks and evaluates STSE with both.
func RunWalkAblation(env *Env) WalkAblationResult {
	wcfg := env.Config.Walks
	wcfg.IncludePredicates = true
	predStore := embedding.TrainGraph(env.KG.Graph, wcfg, env.Config.Train)
	predEC := core.NewEmbeddingCosine(env.KG.Graph, predStore)

	var out WalkAblationResult
	for _, tuples := range []int{1, 5} {
		queries := env.QuerySet(tuples)
		for _, style := range []string{"entities", "entities+predicates"} {
			var eng *core.Engine
			if style == "entities" {
				eng = env.EngineEmbeddings()
			} else {
				eng = core.NewEngine(env.Lake, predEC)
			}
			r := engineRunner("STSE/"+style, eng)
			sample := evalNDCG(env, r, queries, 10)
			out.Rows = append(out.Rows, WalkAblationRow{
				Tuples: tuples, Walks: style,
				MeanNDCG: metrics.Summarize(sample).Mean,
			})
		}
	}
	return out
}

// Render prints the comparison.
func (r WalkAblationResult) Render(w io.Writer) {
	renderHeader(w, "Ablation: embedding walk vocabulary (entity-only vs RDF2Vec-style with predicates), STSE NDCG@10")
	tw := newTabWriter(w)
	fmt.Fprintln(tw, "Tuples\tWalks\tMean NDCG@10")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%d\t%s\t%.3f\n", row.Tuples, row.Walks, row.MeanNDCG)
	}
	tw.Flush()
}
