package experiments

import (
	"fmt"
	"io"
	"time"

	"thetis/internal/core"
	"thetis/internal/datagen"
	"thetis/internal/metrics"
)

// --- Row-aggregation ablation (Section 7.2, "Aggregating row scores") ---

// AggregationResult compares MAX vs AVG row-score aggregation on NDCG@10;
// the paper reports MAX "up to 5x better NDCG scores on average".
type AggregationResult struct {
	Rows []AggregationRow
}

// AggregationRow is one (similarity, tuples, aggregation) cell.
type AggregationRow struct {
	Method  string
	Tuples  int
	Agg     core.Aggregation
	Summary metrics.Summary
}

// RunAggregationAblation evaluates both aggregations for both similarities
// and query sizes.
func RunAggregationAblation(env *Env) AggregationResult {
	var out AggregationResult
	for _, tuples := range []int{1, 5} {
		queries := env.QuerySet(tuples)
		for _, kind := range []SimKind{SimTypes, SimEmbeddings} {
			for _, agg := range []core.Aggregation{core.AggregateMax, core.AggregateAvg} {
				var eng *core.Engine
				if kind == SimEmbeddings {
					eng = env.EngineEmbeddings()
				} else {
					eng = env.EngineTypes()
				}
				eng.Agg = agg
				r := Runner{
					Name: fmt.Sprintf("STS%v/%v", kind, agg),
					Search: func(bq datagen.BenchmarkQuery, k int) ([]int, core.Stats) {
						res, stats := eng.Search(bq.Query, k)
						return core.RankedTables(res), stats
					},
				}
				sample := evalNDCG(env, r, queries, 10)
				out.Rows = append(out.Rows, AggregationRow{
					Method: fmt.Sprintf("STS%v", kind), Tuples: tuples, Agg: agg,
					Summary: metrics.Summarize(sample),
				})
			}
		}
	}
	return out
}

// Render prints the comparison.
func (r AggregationResult) Render(w io.Writer) {
	renderHeader(w, "Ablation: row-score aggregation (MAX vs AVG), NDCG@10")
	tw := newTabWriter(w)
	fmt.Fprintln(tw, "Method\tTuples\tAggregation\tNDCG@10 distribution")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%s\t%d\t%v\t%s\n", row.Method, row.Tuples, row.Agg, fmtSummary(row.Summary))
	}
	tw.Flush()
}

// Mean returns the mean NDCG for a cell, or -1.
func (r AggregationResult) Mean(method string, tuples int, agg core.Aggregation) float64 {
	for _, row := range r.Rows {
		if row.Method == method && row.Tuples == tuples && row.Agg == agg {
			return row.Summary.Mean
		}
	}
	return -1
}

// --- BM25-as-prefilter ablation (Section 7.3) ---

// BM25FilterResult compares LSH prefiltering against naive BM25
// prefiltering (candidate set = BM25 top results). The paper reports NDCG
// drops of 13–30% for the BM25 filter.
type BM25FilterResult struct {
	Rows []BM25FilterRow
}

// BM25FilterRow is one (similarity, tuples) comparison.
type BM25FilterRow struct {
	Method       string
	Tuples       int
	LSHNDCG      float64 // mean NDCG@10 with LSH prefilter
	BM25NDCG     float64 // mean NDCG@10 with BM25 prefilter
	RelativeDrop float64 // (LSH - BM25) / LSH
}

// RunBM25FilterAblation evaluates both prefilters with the recommended
// (30,10) LSH configuration.
func RunBM25FilterAblation(env *Env) BM25FilterResult {
	m := NewMethods(env)
	cfg := core.LSEIConfig{Vectors: 30, BandSize: 10, Seed: 1}
	var out BM25FilterResult
	for _, tuples := range []int{1, 5} {
		queries := env.QuerySet(tuples)
		for _, kind := range []SimKind{SimTypes, SimEmbeddings} {
			lshRunner := m.SemanticLSH(kind, cfg, 3)
			eng := m.engine(kind)
			lsei := m.LSEI(kind, cfg)
			bmRunner := Runner{
				Name: "BM25filter",
				Search: func(bq datagen.BenchmarkQuery, k int) ([]int, core.Stats) {
					// Fair comparison: BM25 keeps exactly as many
					// candidates as the recommended LSH prefilter (3 votes)
					// does for this query.
					n := len(lsei.Candidates(bq.Query, 3))
					if n < k {
						n = k
					}
					hits := env.BM25.Search(bq.KeywordQuery(env.KG.Graph), n)
					cands := make([]int32, len(hits))
					for i, h := range hits {
						cands[i] = h.Doc
					}
					res, stats := eng.SearchCandidates(bq.Query, toTableIDs(cands), k)
					return core.RankedTables(res), stats
				},
			}
			lsh := metrics.Summarize(evalNDCG(env, lshRunner, queries, 10)).Mean
			bm := metrics.Summarize(evalNDCG(env, bmRunner, queries, 10)).Mean
			drop := 0.0
			if lsh > 0 {
				drop = (lsh - bm) / lsh
			}
			out.Rows = append(out.Rows, BM25FilterRow{
				Method: fmt.Sprintf("STS%v", kind), Tuples: tuples,
				LSHNDCG: lsh, BM25NDCG: bm, RelativeDrop: drop,
			})
		}
	}
	return out
}

// Render prints the comparison.
func (r BM25FilterResult) Render(w io.Writer) {
	renderHeader(w, "Ablation: LSH prefilter vs naive BM25 prefilter, mean NDCG@10")
	tw := newTabWriter(w)
	fmt.Fprintln(tw, "Method\tTuples\tLSH NDCG\tBM25-filter NDCG\tNDCG drop")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%s\t%d\t%.3f\t%.3f\t%s\n",
			row.Method, row.Tuples, row.LSHNDCG, row.BM25NDCG, fmtPct(row.RelativeDrop))
	}
	tw.Flush()
}

// --- Result-set difference vs BM25 (Section 7.2) ---

// OverlapResult measures how different the semantic top-100 is from the
// BM25 top-100; the paper reports median set differences of 66–100 tables,
// i.e. "our semantic table search algorithm finds a disjoint set of tables
// from BM25".
type OverlapResult struct {
	Rows []OverlapRow
}

// OverlapRow is one (similarity, tuples) cell: the distribution of
// |semantic top-100 \ BM25 top-100| across queries.
type OverlapRow struct {
	Method  string
	Tuples  int
	Summary metrics.Summary
}

// RunOverlap computes per-query result-set differences at depth 100.
func RunOverlap(env *Env) OverlapResult {
	m := NewMethods(env)
	bm := m.BM25Text()
	var out OverlapResult
	for _, tuples := range []int{1, 5} {
		queries := env.QuerySet(tuples)
		for _, kind := range []SimKind{SimTypes, SimEmbeddings} {
			sem := m.SemanticBrute(kind)
			var sample []float64
			for _, bq := range queries {
				semTop, _ := sem.Search(bq, 100)
				bmTop, _ := bm.Search(bq, 100)
				inBM := make(map[int]bool, len(bmTop))
				for _, id := range bmTop {
					inBM[id] = true
				}
				diff := 0
				for _, id := range semTop {
					if !inBM[id] {
						diff++
					}
				}
				sample = append(sample, float64(diff))
			}
			out.Rows = append(out.Rows, OverlapRow{
				Method: sem.Name, Tuples: tuples, Summary: metrics.Summarize(sample),
			})
		}
	}
	return out
}

// Render prints the distribution of set differences.
func (r OverlapResult) Render(w io.Writer) {
	renderHeader(w, "Result-set difference vs BM25 at top-100 (tables unique to semantic search)")
	tw := newTabWriter(w)
	fmt.Fprintln(tw, "Method\tTuples\t|semantic \\ BM25| distribution")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%s\t%d\t%s\n", row.Method, row.Tuples, fmtSummary(row.Summary))
	}
	tw.Flush()
}

// --- Table-scoring microbenchmark (Section 7.3, "Table scoring") ---

// ScoringResult measures the per-table scoring cost and the fraction spent
// in the query-to-column mapping μ. The paper reports 2.2–16.6 ms per table
// with 58–78% spent in μ.
type ScoringResult struct {
	Rows []ScoringRow
}

// ScoringRow is one (similarity, tuples) cell.
type ScoringRow struct {
	Method          string
	Tuples          int
	MeanPerTable    time.Duration
	MappingFraction float64
}

// RunScoring scores every corpus table once per query and reports means.
func RunScoring(env *Env) ScoringResult {
	var out ScoringResult
	for _, tuples := range []int{1, 5} {
		queries := env.QuerySet(tuples)
		for _, kind := range []SimKind{SimTypes, SimEmbeddings} {
			var eng *core.Engine
			if kind == SimEmbeddings {
				eng = env.EngineEmbeddings()
			} else {
				eng = env.EngineTypes()
			}
			eng.Parallelism = 1 // per-table timing wants a single thread
			var total, mapping time.Duration
			tables := 0
			for _, bq := range queries {
				start := time.Now()
				_, stats := eng.Search(bq.Query, 10)
				total += time.Since(start)
				// With Parallelism = 1 the mapping stage's CPU time is
				// wall time, so the fraction below is well-defined.
				if st := stats.Trace.Stage("mapping"); st != nil {
					mapping += st.CPU
				}
				tables += stats.Candidates
			}
			row := ScoringRow{Method: fmt.Sprintf("STS%v", kind), Tuples: tuples}
			if tables > 0 {
				row.MeanPerTable = total / time.Duration(tables)
			}
			if total > 0 {
				row.MappingFraction = float64(mapping) / float64(total)
			}
			out.Rows = append(out.Rows, row)
		}
	}
	return out
}

// Render prints the microbenchmark.
func (r ScoringResult) Render(w io.Writer) {
	renderHeader(w, "Table scoring cost and fraction spent in the mapping µ")
	tw := newTabWriter(w)
	fmt.Fprintln(tw, "Method\tTuples\tMean per table\tTime in µ")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%s\t%d\t%v\t%s\n",
			row.Method, row.Tuples, row.MeanPerTable.Round(time.Nanosecond*100), fmtPct(row.MappingFraction))
	}
	tw.Flush()
}
