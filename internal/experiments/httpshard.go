package experiments

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"time"

	"thetis/internal/core"
	"thetis/internal/kg"
	"thetis/internal/lake"
	"thetis/internal/remote"
	"thetis/internal/shard"
)

// HTTPShardRow is one shard count of the shard-over-HTTP sweep.
type HTTPShardRow struct {
	Shards int
	// InProc and InProcP50 are per-query latencies through the in-process
	// Coordinator; Remote and RemoteP50 go through remote.Shard clients to
	// loopback HTTP daemons speaking the sealed wire protocol.
	InProc    time.Duration
	InProcP50 time.Duration
	Remote    time.Duration
	RemoteP50 time.Duration
	// Overhead is the relative cost of crossing HTTP vs staying in-process
	// (mean remote / mean in-process - 1).
	Overhead float64
	// PerLeg is the absolute added wall time per query divided by the shard
	// count — the loopback cost of one scatter leg (serialize, seal, HTTP
	// round trip, verify, decode).
	PerLeg time.Duration
	// Identical reports whether every query's remote ranking — IDs and
	// scores — matched the in-process coordinator bit for bit.
	Identical bool
}

// HTTPShardResult measures the shard-over-HTTP seam (docs/SHARDING.md
// §"Shard-over-HTTP") against in-process scatter-gather on the same
// corpus and partitioning: both paths run the same Coordinator merge over
// the same per-shard engines, so the delta isolates the transport —
// URI serialization, the CRC32C envelope both ways, the HTTP round trip,
// and the client's deadline/retry bookkeeping — with no faults injected.
type HTTPShardResult struct {
	Queries int
	Rows    []HTTPShardRow
}

// loopbackDaemon serves one shard's slice over the sealed wire protocol,
// exactly as a remote thetisd would: verify the envelope, resolve URIs
// against its own graph, search the local slice, seal local-ID results.
func loopbackDaemon(g *kg.Graph, sh *shard.Local) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		var req remote.SearchRequest
		if err := remote.Open(body, &req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		q := make(core.Query, 0, len(req.Tuples))
		for _, uris := range req.Tuples {
			tuple := make(core.Tuple, 0, len(uris))
			for _, uri := range uris {
				if e, ok := g.Lookup(uri); ok {
					tuple = append(tuple, e)
				}
			}
			q = append(q, tuple)
		}
		res, stats := sh.SearchShard(r.Context(), q, req.K, shard.SearchOptions{ForceFullScan: req.ForceFullScan})
		p := remote.SearchPayload{Results: make([]remote.WireResult, len(res))}
		for i, rr := range res {
			p.Results[i] = remote.WireResult{Table: int32(rr.Table), Score: rr.Score}
		}
		p.Stats = remote.WireStats{
			Candidates: stats.Candidates, Scored: stats.Scored,
			MappingMicro: stats.MappingTime.Microseconds(),
			TotalMicro:   stats.TotalTime.Microseconds(),
			Truncated:    stats.Truncated, Panicked: stats.Panicked,
		}
		sealed, err := remote.Seal(p)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(sealed)
	})
}

// buildHTTPShardedDeployment wires the remote twin of
// buildShardedDeployment: the same hash partitioning and globally
// configured per-shard engines, but each shard ingests with DENSE LOCAL
// IDs behind a loopback HTTP daemon, and the Coordinator scatters through
// remote.Shard clients that translate local IDs back to global ones.
// close tears the daemons down.
func buildHTTPShardedDeployment(env *Env, n int, cfg core.LSEIConfig, votes int) (coord *shard.Coordinator, close func()) {
	part := lake.NewHashPartitioner(n)
	locals := make([]*shard.Local, n)
	globals := make([][]lake.TableID, n)
	for i := range locals {
		locals[i] = shard.NewLocal(i, env.KG.Graph)
	}
	for id := 0; id < env.Lake.NumTables(); id++ {
		t := env.Lake.Table(lake.TableID(id))
		si := part.Assign(t)
		locals[si].Add(t, lake.TableID(len(globals[si]))) // dense local ID
		globals[si] = append(globals[si], lake.TableID(id))
	}
	lakes := make([]*lake.Lake, n)
	for i, sh := range locals {
		lakes[i] = sh.Lake()
	}
	inf := core.IDFInformativenessOver(lakes)
	filter := core.FrequentTypesOver(lakes, env.TJ, 0.5)
	searchers := make([]shard.Searcher, n)
	servers := make([]*httptest.Server, n)
	for i, sh := range locals {
		e := core.NewEngine(sh.Lake(), env.TJ)
		e.Inf = inf
		sh.SetEngine(e)
		sh.SetVotes(votes)
		sh.SetIndex(core.BuildTypeLSEIFiltered(sh.Lake(), env.TJ, cfg, filter))
		servers[i] = httptest.NewServer(loopbackDaemon(env.KG.Graph, sh))
		rs, err := remote.NewShard(fmt.Sprintf("exp-http-%d-%d", n, i), env.KG.Graph,
			globals[i], []remote.Replica{{URL: servers[i].URL}}, remote.Options{})
		if err != nil {
			panic(err) // unreachable: one replica is always given
		}
		searchers[i] = rs
	}
	return shard.NewCoordinator(searchers...), func() {
		for _, s := range servers {
			s.Close()
		}
	}
}

// RunHTTPShard benchmarks the shard-over-HTTP transport against in-process
// scatter-gather with type-Jaccard σ and LSH (30,10) prefiltering,
// votes=3, top-10, over the combined 1- and 5-tuple query sets.
func RunHTTPShard(env *Env) HTTPShardResult {
	const (
		votes = 3
		topK  = 10
		reps  = 3
	)
	cfg := core.LSEIConfig{Vectors: 30, BandSize: 10, Seed: 1}
	queries := make([]core.Query, 0, len(env.Queries1)+len(env.Queries5))
	for _, bq := range env.Queries1 {
		queries = append(queries, bq.Query)
	}
	for _, bq := range env.Queries5 {
		queries = append(queries, bq.Query)
	}

	out := HTTPShardResult{Queries: len(queries)}
	maxShards := env.Config.Shards
	if maxShards < 1 {
		maxShards = 4
	}
	for _, n := range shardSweep(maxShards) {
		inproc := buildShardedDeployment(env, n, cfg, votes)
		httpCoord, closeDaemons := buildHTTPShardedDeployment(env, n, cfg, votes)
		inprocTimes, remoteTimes, inprocRanks, remoteRanks := pairedSweep(queries, reps, topK,
			func(q core.Query, k int) []core.Result {
				res, _ := inproc.Search(context.Background(), q, k)
				return res
			},
			func(q core.Query, k int) []core.Result {
				res, _ := httpCoord.Search(context.Background(), q, k)
				return res
			})
		closeDaemons()
		identical := true
		for i := range remoteRanks {
			if !sameRanking(remoteRanks[i], inprocRanks[i]) {
				identical = false
				break
			}
		}
		inMean, inP50 := meanP50(inprocTimes)
		rMean, rP50 := meanP50(remoteTimes)
		out.Rows = append(out.Rows, HTTPShardRow{
			Shards: n,
			InProc: inMean, InProcP50: inP50,
			Remote: rMean, RemoteP50: rP50,
			Overhead:  float64(rMean-inMean) / float64(inMean),
			PerLeg:    (rMean - inMean) / time.Duration(n),
			Identical: identical,
		})
	}
	return out
}

// Render prints the shard-over-HTTP sweep.
func (r HTTPShardResult) Render(w io.Writer) {
	renderHeader(w, "Shard-over-HTTP: loopback transport overhead vs in-process scatter-gather, LSH(30,10) votes=3 top-10")
	fmt.Fprintf(w, "per-query best of 3 interleaved passes over %d queries; PerLeg = added wall time / shard count\n\n", r.Queries)
	tw := newTabWriter(w)
	fmt.Fprintln(tw, "Shards\tIn-proc mean\tIn-proc P50\tHTTP mean\tHTTP P50\tOverhead\tPer leg\tIdentical ranking")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%d\t%v\t%v\t%v\t%v\t%+.1f%%\t%v\t%v\n",
			row.Shards,
			row.InProc.Round(time.Microsecond), row.InProcP50.Round(time.Microsecond),
			row.Remote.Round(time.Microsecond), row.RemoteP50.Round(time.Microsecond),
			100*row.Overhead, row.PerLeg.Round(time.Microsecond), row.Identical)
	}
	tw.Flush()
}
