package experiments

import (
	"fmt"
	"io"
	"time"
)

// RuntimeCell is one cell of the Tables 3/4 grid: a method evaluated on one
// query size with one vote threshold.
type RuntimeCell struct {
	Method    string
	Tuples    int
	Votes     int // 0 for brute-force columns
	MeanTime  time.Duration
	Reduction float64
}

// Table34Result regenerates Table 3 (runtime with LSH prefiltering) and
// Table 4 (search-space reduction) in one pass, since both come from the
// same runs.
type Table34Result struct {
	Cells []RuntimeCell
}

// RunTable34 measures runtime and search-space reduction for the
// brute-force engines and every LSH configuration at 1 and 3 votes, on 1-
// and 5-tuple queries.
func RunTable34(env *Env) Table34Result {
	m := NewMethods(env)
	var out Table34Result
	for _, tuples := range []int{1, 5} {
		queries := env.QuerySet(tuples)
		for _, kind := range []SimKind{SimTypes, SimEmbeddings} {
			r := m.SemanticBrute(kind)
			rt := evalRuntime(env, r, queries)
			out.Cells = append(out.Cells, RuntimeCell{
				Method: r.Name, Tuples: tuples, Votes: 0,
				MeanTime: rt.MeanTime, Reduction: rt.MeanReduction,
			})
		}
		for _, votes := range []int{1, 3} {
			for _, kind := range []SimKind{SimTypes, SimEmbeddings} {
				for _, cfg := range PaperLSHConfigs() {
					r := m.SemanticLSH(kind, cfg, votes)
					rt := evalRuntime(env, r, queries)
					out.Cells = append(out.Cells, RuntimeCell{
						Method: r.Name, Tuples: tuples, Votes: votes,
						MeanTime: rt.MeanTime, Reduction: rt.MeanReduction,
					})
				}
			}
		}
	}
	return out
}

// Render prints both tables.
func (r Table34Result) Render(w io.Writer) {
	renderHeader(w, "Table 3: Mean search runtime (LSH prefiltering by configuration)")
	tw := newTabWriter(w)
	fmt.Fprintln(tw, "Method\tTuples\tVotes\tMean time")
	for _, c := range r.Cells {
		votes := fmt.Sprintf("%d", c.Votes)
		if c.Votes == 0 {
			votes = "-"
		}
		fmt.Fprintf(tw, "%s\t%d\t%s\t%v\n", c.Method, c.Tuples, votes, c.MeanTime.Round(time.Microsecond))
	}
	tw.Flush()

	renderHeader(w, "Table 4: Search-space reduction (LSH prefiltering by configuration)")
	tw = newTabWriter(w)
	fmt.Fprintln(tw, "Method\tTuples\tVotes\tReduction")
	for _, c := range r.Cells {
		if c.Votes == 0 {
			continue // brute force prunes nothing; Table 4 covers LSH only
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%s\n", c.Method, c.Tuples, c.Votes, fmtPct(c.Reduction))
	}
	tw.Flush()
}

// Cell returns a grid cell by coordinates, with ok=false when absent.
func (r Table34Result) Cell(method string, tuples, votes int) (RuntimeCell, bool) {
	for _, c := range r.Cells {
		if c.Method == method && c.Tuples == tuples && c.Votes == votes {
			return c, true
		}
	}
	return RuntimeCell{}, false
}
