package experiments

import (
	"fmt"
	"io"

	"thetis/internal/metrics"
)

// Fig5Series is one box of Figure 5: the recall distribution of one method
// at one cutoff and query size.
type Fig5Series struct {
	Method  string
	Tuples  int
	K       int // 100 or 200
	Summary metrics.Summary
}

// Fig5Result regenerates Figure 5 (recall at top-100 and top-200),
// including the complemented STSTC/STSEC variants that merge semantic
// search with BM25.
type Fig5Result struct {
	Series []Fig5Series
}

// RunFig5 evaluates recall@100 and recall@200 for BM25, STST, STSE, and
// their BM25-complemented variants on both query sizes.
func RunFig5(env *Env) Fig5Result {
	m := NewMethods(env)
	stst := m.SemanticBrute(SimTypes)
	stse := m.SemanticBrute(SimEmbeddings)
	runners := []Runner{
		m.BM25Text(),
		stst,
		stse,
		m.Complemented(stst),
		m.Complemented(stse),
	}
	var out Fig5Result
	for _, tuples := range []int{1, 5} {
		queries := env.QuerySet(tuples)
		for _, k := range []int{100, 200} {
			for _, r := range runners {
				sample := evalRecall(env, r, queries, k)
				out.Series = append(out.Series, Fig5Series{
					Method:  r.Name,
					Tuples:  tuples,
					K:       k,
					Summary: metrics.Summarize(sample),
				})
			}
		}
	}
	return out
}

// Render prints one line per box of the figure.
func (r Fig5Result) Render(w io.Writer) {
	renderHeader(w, "Figure 5: Recall@100/@200 (incl. BM25-complemented STSTC/STSEC)")
	tw := newTabWriter(w)
	fmt.Fprintln(tw, "Method\tTuples\tK\tRecall distribution")
	for _, s := range r.Series {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%s\n", s.Method, s.Tuples, s.K, fmtSummary(s.Summary))
	}
	tw.Flush()
}

// Median returns the median recall for a method/tuples/k cell, or -1.
func (r Fig5Result) Median(method string, tuples, k int) float64 {
	for _, s := range r.Series {
		if s.Method == method && s.Tuples == tuples && s.K == k {
			return s.Summary.Median
		}
	}
	return -1
}
