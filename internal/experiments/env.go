// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 7) over synthetic semantic-data-lake benchmarks. One
// runner exists per artifact — Table 2, Figures 4–6, Tables 3–4, and the
// in-prose ablations — each returning a typed result that renders the same
// rows/series the paper reports.
package experiments

import (
	"fmt"
	"io"
	"time"

	"thetis/internal/bm25"
	"thetis/internal/core"
	"thetis/internal/datagen"
	"thetis/internal/embedding"
	"thetis/internal/lake"
)

// Config sizes a benchmark environment. The paper's corpora span 238K–1.7M
// tables; defaults here are scaled to a laptop/CI budget while keeping the
// per-experiment *shape* intact. Increase Tables/Queries to approach the
// paper's scale.
type Config struct {
	// Tables is the WT2015-profile corpus size.
	Tables int
	// Queries is the number of benchmark queries (the paper uses 50 1-tuple
	// + 50 5-tuple queries).
	Queries int
	// KG controls the synthetic knowledge graph.
	KG datagen.KGConfig
	// Walks and Train control embedding training.
	Walks embedding.WalkConfig
	Train embedding.TrainConfig
	// Seed drives query sampling.
	Seed int64
	// Shards is the largest shard count the scatter-gather experiment
	// sweeps (powers of two from 1; see RunShards).
	Shards int
	// Concurrency, QPS, and LoadWindow shape the throughput experiment's
	// closed-loop load (benchrunner -concurrency/-qps/-duration): workers,
	// optional aggregate rate cap (0 = unpaced), and per-cell measuring
	// window (0 = 2s default).
	Concurrency int
	QPS         float64
	LoadWindow  time.Duration
}

// DefaultConfig returns the standard experiment environment: a 4,000-table
// WT2015-profile corpus with 25 query topics.
func DefaultConfig() Config {
	return Config{
		Tables:  4000,
		Queries: 25,
		KG:      datagen.DefaultKGConfig(),
		Walks:   embedding.DefaultWalkConfig(),
		Train:   embedding.DefaultTrainConfig(),
		Seed:    42,
		Shards:  4,
	}
}

// SmallConfig returns a fast environment for tests. It is sized so that
// the top-100/200 recall cutoffs of Figure 5 stay meaningful (well under
// the corpus size).
func SmallConfig() Config {
	return Config{
		Tables:  1500,
		Queries: 10,
		KG: datagen.KGConfig{
			Domains: 6, LeafTypesPerDomain: 2, MembersPerLeafType: 80,
			GroupsPerDomain: 10, Places: 40, EdgesPerMember: 2, Seed: 5,
		},
		Walks:  embedding.WalkConfig{WalksPerEntity: 6, Length: 6, Undirected: true, Seed: 5},
		Train:  embedding.TrainConfig{Dim: 24, Window: 3, Negatives: 4, Epochs: 2, LearningRate: 0.03, Seed: 5},
		Seed:   5,
		Shards: 4,
	}
}

// Env is a fully materialized benchmark environment shared by the
// experiment runners: KG, corpus, embeddings, similarity functions, BM25
// index, and 1-/5-tuple query sets with ground truth.
type Env struct {
	Config Config
	KG     *datagen.KG
	Lake   *lake.Lake

	Store *embedding.Store
	TJ    *core.TypeJaccard
	EC    *core.EmbeddingCosine
	BM25  *bm25.Index

	// Queries5 are the generated 5-tuple queries; Queries1 are their
	// 1-tuple prefixes (the paper's containment property).
	Queries1 []datagen.BenchmarkQuery
	Queries5 []datagen.BenchmarkQuery
	// GT holds ground truth per query name (shared by both sizes).
	GT map[string]datagen.GroundTruth
}

// NewEnv generates the KG, corpus, embeddings, indexes, queries, and ground
// truth. Progress lines go to w when non-nil.
func NewEnv(cfg Config, w io.Writer) *Env {
	logf := func(format string, args ...any) {
		if w != nil {
			fmt.Fprintf(w, format+"\n", args...)
		}
	}
	env := &Env{Config: cfg}
	logf("generating knowledge graph…")
	env.KG = datagen.GenerateKG(cfg.KG)
	logf("  %s", env.KG.Graph)

	logf("generating %d-table WT2015-profile corpus…", cfg.Tables)
	env.Lake = datagen.GenerateCorpus(env.KG, datagen.ProfileWT2015(cfg.Tables))
	logf("  %s", env.Lake.ComputeStats())

	logf("training embeddings (RDF2Vec substitute)…")
	env.Store = embedding.TrainGraph(env.KG.Graph, cfg.Walks, cfg.Train)
	logf("  %d vectors, dim %d", env.Store.Len(), env.Store.Dim())

	env.TJ = core.NewTypeJaccard(env.KG.Graph)
	env.EC = core.NewEmbeddingCosine(env.KG.Graph, env.Store)

	logf("building BM25 index…")
	env.BM25 = bm25.IndexLake(env.Lake)

	logf("sampling %d queries + ground truth…", cfg.Queries)
	env.Queries5 = datagen.GenerateQueries(env.KG, datagen.QueryConfig{
		Count: cfg.Queries, TuplesPerQuery: 5, Width: 3, Seed: cfg.Seed,
	})
	env.Queries1 = make([]datagen.BenchmarkQuery, len(env.Queries5))
	env.GT = make(map[string]datagen.GroundTruth, len(env.Queries5))
	for i, q := range env.Queries5 {
		env.Queries1[i] = q.Truncate(1)
		env.GT[q.Name] = datagen.BuildGroundTruth(env.Lake, q)
	}
	logf("environment ready")
	return env
}

// NewEnvFromBenchmark builds an environment from a benchmark directory
// written by datagen.WriteBenchmark (kg.nt, corpus.jsonl, queries.json)
// instead of generating fresh data, so experiments replay on a fixed
// corpus. Embedding training and index construction still follow cfg.
func NewEnvFromBenchmark(dir string, cfg Config, w io.Writer) (*Env, error) {
	logf := func(format string, args ...any) {
		if w != nil {
			fmt.Fprintf(w, format+"\n", args...)
		}
	}
	logf("loading benchmark from %s…", dir)
	g, l, queries, err := datagen.LoadBenchmark(dir)
	if err != nil {
		return nil, err
	}
	env := &Env{Config: cfg}
	env.Config.Tables = l.NumTables()
	env.Config.Queries = len(queries)
	env.KG = &datagen.KG{Graph: g}
	env.Lake = l
	logf("  %s", l.ComputeStats())

	logf("training embeddings (RDF2Vec substitute)…")
	env.Store = embedding.TrainGraph(g, cfg.Walks, cfg.Train)
	env.TJ = core.NewTypeJaccard(g)
	env.EC = core.NewEmbeddingCosine(g, env.Store)
	logf("building BM25 index…")
	env.BM25 = bm25.IndexLake(l)

	env.Queries5 = queries
	env.Queries1 = make([]datagen.BenchmarkQuery, len(queries))
	env.GT = make(map[string]datagen.GroundTruth, len(queries))
	for i, q := range queries {
		env.Queries1[i] = q.Truncate(1)
		env.GT[q.Name] = datagen.BuildGroundTruth(l, q)
	}
	logf("environment ready")
	return env, nil
}

// CanGenerate reports whether the environment carries the synthetic
// generator's domain structure. Environments replayed from a benchmark
// directory cannot generate additional corpora, so the experiments that
// build extra profiles (Table 2's other rows, WT2019, GitTables) degrade
// to the loaded corpus.
func (e *Env) CanGenerate() bool { return len(e.KG.Domains) > 0 }

// QuerySet selects the 1- or 5-tuple benchmark queries.
func (e *Env) QuerySet(tuples int) []datagen.BenchmarkQuery {
	if tuples <= 1 {
		return e.Queries1
	}
	return e.Queries5
}

// EngineTypes returns a fresh engine configured with type-Jaccard σ (STST).
func (e *Env) EngineTypes() *core.Engine { return core.NewEngine(e.Lake, e.TJ) }

// EngineEmbeddings returns a fresh engine with embedding-cosine σ (STSE).
func (e *Env) EngineEmbeddings() *core.Engine { return core.NewEngine(e.Lake, e.EC) }
