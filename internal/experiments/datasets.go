package experiments

import (
	"fmt"
	"io"
	"time"

	"thetis/internal/core"
	"thetis/internal/datagen"
	"thetis/internal/lake"
	"thetis/internal/linking"
	"thetis/internal/metrics"
)

// --- WT2019 experiment (Section 7.4) ---

// WT2019Row is one (similarity, tuples) cell of the low-coverage corpus
// experiment.
type WT2019Row struct {
	Method   string
	Tuples   int
	MeanNDCG float64
	MeanTime time.Duration
}

// WT2019Result evaluates Thetis on a larger, lower-coverage WT2019-profile
// corpus. The expected shape: NDCG stays close to the WT2015 numbers
// (the paper: 0.55–0.62 versus WT2015's similar scores) despite coverage
// dropping from ~28% to ~18%, while runtimes grow with corpus size.
type WT2019Result struct {
	Coverage float64
	Tables   int
	Rows     []WT2019Row
}

// RunWT2019 builds the WT2019-profile corpus (1.9× the base corpus size,
// the paper's ratio) and evaluates LSH(30,10)-prefiltered search.
func RunWT2019(env *Env) WT2019Result {
	if !env.CanGenerate() {
		return WT2019Result{}
	}
	l := datagen.GenerateCorpus(env.KG, datagen.ProfileWT2019(env.Config.Tables*19/10))
	stats := l.ComputeStats()
	out := WT2019Result{Coverage: stats.MeanCoverage, Tables: stats.Tables}

	cfg := core.LSEIConfig{Vectors: 30, BandSize: 10, Seed: 1}
	typeLSEI := core.BuildTypeLSEI(l, env.TJ, cfg)
	embLSEI := core.BuildEmbeddingLSEI(l, env.EC, env.Store.Dim(), cfg)

	for _, tuples := range []int{1, 5} {
		queries := env.QuerySet(tuples)
		for _, kind := range []SimKind{SimTypes, SimEmbeddings} {
			var eng *core.Engine
			var lsei *core.LSEI
			if kind == SimEmbeddings {
				eng = core.NewEngine(l, env.EC)
				lsei = embLSEI
			} else {
				eng = core.NewEngine(l, env.TJ)
				lsei = typeLSEI
			}
			var total time.Duration
			var ndcg []float64
			for _, bq := range queries {
				gt := datagen.BuildGroundTruth(l, bq)
				start := time.Now()
				cands := lsei.Candidates(bq.Query, 3)
				res, _ := eng.SearchCandidates(bq.Query, cands, 10)
				total += time.Since(start)
				ndcg = append(ndcg, metrics.NDCG(core.RankedTables(res), gt.Grades, 10))
			}
			out.Rows = append(out.Rows, WT2019Row{
				Method: fmt.Sprintf("%v(30,10)", kind), Tuples: tuples,
				MeanNDCG: metrics.Summarize(ndcg).Mean,
				MeanTime: total / time.Duration(len(queries)),
			})
		}
	}
	return out
}

// Render prints the WT2019 rows.
func (r WT2019Result) Render(w io.Writer) {
	if len(r.Rows) == 0 {
		renderHeader(w, "WT2019-profile corpus: skipped (requires a generated environment)")
		return
	}
	renderHeader(w, fmt.Sprintf("WT2019-profile corpus: %d tables, %s coverage", r.Tables, fmtPct(r.Coverage)))
	tw := newTabWriter(w)
	fmt.Fprintln(tw, "Method\tTuples\tMean NDCG@10\tMean time")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%s\t%d\t%.3f\t%v\n", row.Method, row.Tuples, row.MeanNDCG, row.MeanTime.Round(time.Microsecond))
	}
	tw.Flush()
}

// --- GitTables experiment (Section 7.4) ---

// GitTablesRow is one (similarity, tuples) runtime cell.
type GitTablesRow struct {
	Method    string
	Tuples    int
	MeanTime  time.Duration
	Reduction float64
}

// GitTablesResult evaluates runtime on a GitTables-profile corpus (large
// tables, no ground truth, mention linking via the label index instead of
// gold annotations). The expected shape: despite much larger tables, LSH
// reduces the corpus so aggressively (>90%) that runtimes stay comparable.
type GitTablesResult struct {
	Tables   int
	MeanRows float64
	Coverage float64
	Rows     []GitTablesRow
}

// RunGitTables builds the corpus, strips gold links, re-links every cell
// with the fuzzy label linker (the Lucene substitute), and measures search.
func RunGitTables(env *Env) GitTablesResult {
	if !env.CanGenerate() {
		return GitTablesResult{}
	}
	l := datagen.GenerateCorpus(env.KG, datagen.ProfileGitTables(env.Config.Tables))
	// GitTables has no entity annotations: re-link by label search.
	linker := linking.NewFuzzyLinker(env.KG.Graph, 0.75)
	relinked := relinkLake(l, linker)
	stats := relinked.ComputeStats()
	out := GitTablesResult{Tables: stats.Tables, MeanRows: stats.MeanRows, Coverage: stats.MeanCoverage}

	cfg := core.LSEIConfig{Vectors: 30, BandSize: 10, Seed: 1}
	typeLSEI := core.BuildTypeLSEI(relinked, env.TJ, cfg)
	embLSEI := core.BuildEmbeddingLSEI(relinked, env.EC, env.Store.Dim(), cfg)

	for _, tuples := range []int{1, 5} {
		queries := env.QuerySet(tuples)
		for _, kind := range []SimKind{SimTypes, SimEmbeddings} {
			var eng *core.Engine
			var lsei *core.LSEI
			if kind == SimEmbeddings {
				eng = core.NewEngine(relinked, env.EC)
				lsei = embLSEI
			} else {
				eng = core.NewEngine(relinked, env.TJ)
				lsei = typeLSEI
			}
			var total time.Duration
			var reduction float64
			for _, bq := range queries {
				start := time.Now()
				cands := lsei.Candidates(bq.Query, 3)
				eng.SearchCandidates(bq.Query, cands, 10)
				total += time.Since(start)
				reduction += lsei.Reduction(cands)
			}
			out.Rows = append(out.Rows, GitTablesRow{
				Method: fmt.Sprintf("%v(30,10)", kind), Tuples: tuples,
				MeanTime:  total / time.Duration(len(queries)),
				Reduction: reduction / float64(len(queries)),
			})
		}
	}
	return out
}

// Render prints the GitTables rows.
func (r GitTablesResult) Render(w io.Writer) {
	if len(r.Rows) == 0 {
		renderHeader(w, "GitTables-profile corpus: skipped (requires a generated environment)")
		return
	}
	renderHeader(w, fmt.Sprintf("GitTables-profile corpus: %d tables, %.0f mean rows, %s coverage (keyword-linked)",
		r.Tables, r.MeanRows, fmtPct(r.Coverage)))
	tw := newTabWriter(w)
	fmt.Fprintln(tw, "Method\tTuples\tMean time\tReduction")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%s\t%d\t%v\t%s\n", row.Method, row.Tuples, row.MeanTime.Round(time.Microsecond), fmtPct(row.Reduction))
	}
	tw.Flush()
}

// --- Noisy entity linker experiment (Section 7.5) ---

// NoisyLinkResult evaluates Thetis with a degraded entity linker standing
// in for EMBLOOKUP: gold links are replaced by predictions with reduced
// coverage and precision. The paper's shape: even at F1 ≈ 0.21 and 20%
// coverage, Thetis still returns meaningful results (NDCG well above 0).
type NoisyLinkResult struct {
	Coverage float64
	F1       float64
	Rows     []WT2019Row // same row shape: method, tuples, NDCG, time
}

// RunNoisyLink degrades the corpus links and re-evaluates NDCG.
func RunNoisyLink(env *Env) NoisyLinkResult {
	base := linking.NewDictionaryLinker(env.KG.Graph)
	noisy := linking.NewNoisyLinker(base, env.KG.Graph.NumEntities(), 0.35, 0.35, 9)
	relinked := relinkLakeKeepGold(env, noisy)

	// Measure linking quality against the gold corpus.
	var f1 float64
	n := 0
	for i, gold := range env.Lake.Tables() {
		_, _, ff := linking.Quality(gold, relinked.Table(lake.TableID(i)))
		f1 += ff
		n++
	}
	out := NoisyLinkResult{
		Coverage: relinked.ComputeStats().MeanCoverage,
		F1:       f1 / float64(n),
	}

	for _, tuples := range []int{1, 5} {
		queries := env.QuerySet(tuples)
		for _, kind := range []SimKind{SimTypes, SimEmbeddings} {
			var eng *core.Engine
			if kind == SimEmbeddings {
				eng = core.NewEngine(relinked, env.EC)
			} else {
				eng = core.NewEngine(relinked, env.TJ)
			}
			var ndcg []float64
			var total time.Duration
			for _, bq := range queries {
				gt := env.GT[bq.Name] // judged against the gold corpus topics
				start := time.Now()
				res, _ := eng.Search(bq.Query, 10)
				total += time.Since(start)
				ndcg = append(ndcg, metrics.NDCG(core.RankedTables(res), gt.Grades, 10))
			}
			out.Rows = append(out.Rows, WT2019Row{
				Method: fmt.Sprintf("STS%v", kind), Tuples: tuples,
				MeanNDCG: metrics.Summarize(ndcg).Mean,
				MeanTime: total / time.Duration(len(queries)),
			})
		}
	}
	return out
}

// Render prints the noisy-linker rows.
func (r NoisyLinkResult) Render(w io.Writer) {
	renderHeader(w, fmt.Sprintf("Noisy entity linker (EMBLOOKUP substitute): coverage %s, linker F1 %.2f",
		fmtPct(r.Coverage), r.F1))
	tw := newTabWriter(w)
	fmt.Fprintln(tw, "Method\tTuples\tMean NDCG@10\tMean time")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%s\t%d\t%.3f\t%v\n", row.Method, row.Tuples, row.MeanNDCG, row.MeanTime.Round(time.Microsecond))
	}
	tw.Flush()
}
