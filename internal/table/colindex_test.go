package table

import (
	"testing"

	"thetis/internal/kg"
)

func TestBuildColumnIndex(t *testing.T) {
	tb := New("t", []string{"a", "b"})
	tb.AppendRow([]Cell{LinkedCell("x", 7), {Value: "-"}})
	tb.AppendRow([]Cell{LinkedCell("y", 3), LinkedCell("z", 7)})
	tb.AppendRow([]Cell{LinkedCell("x", 7), {Value: "-"}})
	ci := BuildColumnIndex(tb)
	if len(ci.Cols) != 2 {
		t.Fatalf("Cols = %d, want 2", len(ci.Cols))
	}
	a := ci.Cols[0]
	// Distinct entities in first-occurrence order, with multiplicities.
	if len(a.Entities) != 2 || a.Entities[0] != 7 || a.Entities[1] != 3 {
		t.Fatalf("col a entities = %v, want [7 3]", a.Entities)
	}
	if a.Counts[0] != 2 || a.Counts[1] != 1 {
		t.Fatalf("col a counts = %v, want [2 1]", a.Counts)
	}
	if a.Linked != 3 {
		t.Fatalf("col a linked = %d, want 3", a.Linked)
	}
	b := ci.Cols[1]
	if len(b.Entities) != 1 || b.Entities[0] != kg.EntityID(7) || b.Counts[0] != 1 || b.Linked != 1 {
		t.Fatalf("col b = %+v", b)
	}
}

func TestBuildColumnIndexEmptyTable(t *testing.T) {
	ci := BuildColumnIndex(New("empty", []string{"a"}))
	if len(ci.Cols) != 1 || len(ci.Cols[0].Entities) != 0 || ci.Cols[0].Linked != 0 {
		t.Fatalf("empty table index = %+v", ci)
	}
}
