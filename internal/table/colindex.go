package table

import "thetis/internal/kg"

// ColumnEntityStats summarizes one column for the scoring hot path: the
// distinct linked entities of the column (in first-occurrence row order,
// so derived iteration is deterministic) and, parallel to them, how many
// cells each one occupies.
type ColumnEntityStats struct {
	// Entities are the distinct linked entities of the column.
	Entities []kg.EntityID
	// Counts[i] is the number of cells linked to Entities[i].
	Counts []int32
	// Linked is the total number of linked cells (the sum of Counts).
	Linked int
}

// ColumnIndex pre-aggregates a table's entity annotations per column, so
// that per-row folds over a column (the MAX/AVG row aggregation of
// Algorithm 1, and the score-matrix sums of the column mapping) iterate
// distinct entities with multiplicities instead of raw cells. Columns of a
// table repeat few distinct entities, so this is usually much smaller than
// the table itself.
//
// A ColumnIndex is immutable after construction and safe for concurrent
// readers. It snapshots the annotations at build time; like a lake's
// posting lists, it does not see rows or links added afterwards.
type ColumnIndex struct {
	// Cols holds one entry per table column, index-aligned with the
	// table's attributes.
	Cols []ColumnEntityStats
}

// BuildColumnIndex scans t once and aggregates its entity annotations per
// column.
func BuildColumnIndex(t *Table) *ColumnIndex {
	ci := &ColumnIndex{Cols: make([]ColumnEntityStats, t.NumColumns())}
	for j := range ci.Cols {
		cs := &ci.Cols[j]
		pos := make(map[kg.EntityID]int)
		for _, row := range t.Rows {
			e, ok := row[j].EntityID()
			if !ok {
				continue
			}
			cs.Linked++
			if i, seen := pos[e]; seen {
				cs.Counts[i]++
				continue
			}
			pos[e] = len(cs.Entities)
			cs.Entities = append(cs.Entities, e)
			cs.Counts = append(cs.Counts, 1)
		}
	}
	return ci
}
