package table

import (
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"

	"thetis/internal/atomicio"
	"thetis/internal/kg"
	"thetis/internal/obs"
)

// ReadOptions configures the lenient variants of the table codecs. The zero
// value is strict parsing — identical to ReadCSV / NewJSONReader.
type ReadOptions struct {
	// Lenient skips malformed records (ragged CSV rows, bad JSONL tables)
	// instead of aborting on the first one.
	Lenient bool
	// MaxLineBytes caps one JSONL line; 0 means kg.DefaultMaxLineBytes.
	MaxLineBytes int
	// ErrorBudget bounds how many records lenient mode may quarantine
	// before giving up; negative means unlimited, 0 quarantines nothing.
	ErrorBudget int
	// Source names the stream in quarantine records.
	Source string
	// Quarantine receives skipped-record reports; may be nil.
	Quarantine *obs.Quarantine
}

// ReadCSV parses a CSV stream into a Table. The first record is taken as
// the header row; cells start unlinked. Ragged rows are an error.
func ReadCSV(name string, r io.Reader) (*Table, error) {
	return ReadCSVOpts(name, r, ReadOptions{})
}

// ReadCSVOpts is ReadCSV with explicit strictness. In lenient mode ragged
// or unparsable rows are skipped and quarantined (counted against
// opts.ErrorBudget) while well-formed rows load normally; the header row
// must always parse.
func ReadCSVOpts(name string, r io.Reader, opts ReadOptions) (*Table, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 0 // enforce rectangular shape
	if !opts.Lenient {
		records, err := cr.ReadAll()
		if err != nil {
			return nil, fmt.Errorf("table %q: %w", name, err)
		}
		if len(records) == 0 {
			return nil, fmt.Errorf("table %q: empty file", name)
		}
		t := New(name, records[0])
		for _, rec := range records[1:] {
			t.AppendValues(rec...)
		}
		return t, nil
	}
	source := opts.Source
	if source == "" {
		source = name
	}
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("table %q: %w", name, err)
	}
	t := New(name, header)
	skipped := 0
	for rec := 2; ; rec++ { // data rows start at record 2, after the header
		row, err := cr.Read()
		if err == io.EOF {
			return t, nil
		}
		var perr *csv.ParseError
		if err != nil && !errors.As(err, &perr) {
			// Not a per-record syntax problem (e.g. the underlying reader
			// failed); retrying would loop on the same error.
			return nil, fmt.Errorf("table %q: %w", name, err)
		}
		if err == nil && len(row) == len(header) {
			t.AppendValues(row...)
			continue
		}
		reason := fmt.Sprintf("row arity %d != header arity %d", len(row), len(header))
		if err != nil {
			reason = err.Error()
		}
		skipped++
		opts.Quarantine.Skip(source, rec, reason, strings.Join(row, ","))
		if opts.ErrorBudget >= 0 && skipped > opts.ErrorBudget {
			return nil, fmt.Errorf("table %q: ingest error budget exceeded: %d rows quarantined (budget %d), last: %s",
				name, skipped, opts.ErrorBudget, reason)
		}
	}
}

// WriteCSV serializes the raw values of t (header row first). Entity
// annotations are not written; use the JSON codec to preserve them.
func WriteCSV(t *Table, w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Attributes); err != nil {
		return err
	}
	rec := make([]string, t.NumColumns())
	for _, row := range t.Rows {
		for i, c := range row {
			rec[i] = c.Value
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// jsonTable is the annotated interchange format: values plus entity URIs,
// mirroring the WikiTables benchmark files that carry per-cell DBpedia
// links.
type jsonTable struct {
	Name       string       `json:"name"`
	Attributes []string     `json:"attributes"`
	Categories []string     `json:"categories,omitempty"`
	Rows       [][]jsonCell `json:"rows"`
}

type jsonCell struct {
	Value  string `json:"v"`
	Entity string `json:"e,omitempty"`
}

// WriteJSON serializes t including entity links, resolving entity IDs to
// URIs through g.
func WriteJSON(t *Table, g *kg.Graph, w io.Writer) error {
	jt := jsonTable{
		Name:       t.Name,
		Attributes: t.Attributes,
		Categories: t.Categories,
		Rows:       make([][]jsonCell, len(t.Rows)),
	}
	for i, row := range t.Rows {
		jr := make([]jsonCell, len(row))
		for j, c := range row {
			jr[j].Value = c.Value
			if e, ok := c.EntityID(); ok {
				jr[j].Entity = g.URI(e)
			}
		}
		jt.Rows[i] = jr
	}
	enc := json.NewEncoder(w)
	return enc.Encode(jt)
}

// ReadJSON parses the annotated format, interning any entity URIs into g.
// For streams holding multiple concatenated tables (JSONL corpora), use
// JSONReader instead: ReadJSON's decoder buffers ahead and discards
// whatever follows the first object.
func ReadJSON(g *kg.Graph, r io.Reader) (*Table, error) {
	return decodeTable(g, json.NewDecoder(r))
}

// JSONReader streams tables out of a concatenated JSON (JSONL) corpus.
type JSONReader struct {
	g    *kg.Graph
	dec  *json.Decoder // strict mode: token-stream decoding
	lr   *atomicio.LineReader
	opts ReadOptions
	skip int // lenient mode: tables quarantined so far
}

// NewJSONReader creates a streaming reader over r, interning entities
// into g.
func NewJSONReader(g *kg.Graph, r io.Reader) *JSONReader {
	return &JSONReader{g: g, dec: json.NewDecoder(r)}
}

// NewJSONReaderOpts is NewJSONReader with explicit strictness. Lenient mode
// reads the corpus line by line (one JSON table per line, the usual JSONL
// layout) so a malformed table is skipped and quarantined without
// desynchronizing the stream; strict mode keeps the token-stream decoder,
// which also accepts multi-line concatenated JSON.
func NewJSONReaderOpts(g *kg.Graph, r io.Reader, opts ReadOptions) *JSONReader {
	if !opts.Lenient {
		return NewJSONReader(g, r)
	}
	maxLine := opts.MaxLineBytes
	if maxLine <= 0 {
		maxLine = kg.DefaultMaxLineBytes
	}
	return &JSONReader{g: g, lr: atomicio.NewLineReader(r, maxLine), opts: opts}
}

// Next returns the next table, or io.EOF when the stream ends. A lenient
// reader skips malformed tables (recording them in the quarantine, up to
// the error budget) and returns the next well-formed one; entities of a
// skipped table are never interned into the graph.
func (jr *JSONReader) Next() (*Table, error) {
	if jr.lr == nil {
		if !jr.dec.More() {
			return nil, io.EOF
		}
		return decodeTable(jr.g, jr.dec)
	}
	for {
		raw, lineNo, tooLong, err := jr.lr.Next()
		if err != nil {
			return nil, err // io.EOF included
		}
		line := strings.TrimSpace(string(raw))
		if !tooLong && line == "" {
			continue
		}
		t, reason := jr.decodeLine(raw, tooLong)
		if reason == "" {
			return t, nil
		}
		jr.skip++
		sample := line
		if tooLong {
			sample = line[:min(len(line), 64)]
		}
		jr.opts.Quarantine.Skip(jr.opts.Source, lineNo, reason, sample)
		if jr.opts.ErrorBudget >= 0 && jr.skip > jr.opts.ErrorBudget {
			return nil, fmt.Errorf("line %d: ingest error budget exceeded: %d tables quarantined (budget %d), last: %s",
				lineNo, jr.skip, jr.opts.ErrorBudget, reason)
		}
	}
}

// decodeLine parses one JSONL line into a table, returning a non-empty
// rejection reason instead of mutating the graph when it is malformed.
func (jr *JSONReader) decodeLine(raw []byte, tooLong bool) (*Table, string) {
	if tooLong {
		return nil, "table line exceeds the configured line cap"
	}
	var jt jsonTable
	if err := json.Unmarshal(raw, &jt); err != nil {
		return nil, err.Error()
	}
	t, err := tableFromJSON(jr.g, &jt)
	if err != nil {
		return nil, err.Error()
	}
	return t, ""
}

func decodeTable(g *kg.Graph, dec *json.Decoder) (*Table, error) {
	var jt jsonTable
	if err := dec.Decode(&jt); err != nil {
		return nil, err
	}
	return tableFromJSON(g, &jt)
}

// tableFromJSON materializes a decoded jsonTable. All structural checks run
// before any entity is interned, so rejecting a table leaves the graph
// untouched — loading a dirty corpus leniently builds the same graph as
// loading its clean subset strictly.
func tableFromJSON(g *kg.Graph, jt *jsonTable) (*Table, error) {
	for i, jr := range jt.Rows {
		if len(jr) != len(jt.Attributes) {
			return nil, fmt.Errorf("table %q: row %d arity %d != schema arity %d", jt.Name, i, len(jr), len(jt.Attributes))
		}
	}
	t := New(jt.Name, jt.Attributes)
	t.Categories = jt.Categories
	for _, jr := range jt.Rows {
		cells := make([]Cell, len(jr))
		for j, jc := range jr {
			cells[j] = Cell{Value: jc.Value}
			if jc.Entity != "" {
				cells[j].Entity = Ref(g.AddEntity(jc.Entity, ""))
			}
		}
		t.AppendRow(cells)
	}
	return t, nil
}
