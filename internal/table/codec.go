package table

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"

	"thetis/internal/kg"
)

// ReadCSV parses a CSV stream into a Table. The first record is taken as
// the header row; cells start unlinked. Ragged rows are an error.
func ReadCSV(name string, r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 0 // enforce rectangular shape
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("table %q: %w", name, err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("table %q: empty file", name)
	}
	t := New(name, records[0])
	for _, rec := range records[1:] {
		t.AppendValues(rec...)
	}
	return t, nil
}

// WriteCSV serializes the raw values of t (header row first). Entity
// annotations are not written; use the JSON codec to preserve them.
func WriteCSV(t *Table, w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Attributes); err != nil {
		return err
	}
	rec := make([]string, t.NumColumns())
	for _, row := range t.Rows {
		for i, c := range row {
			rec[i] = c.Value
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// jsonTable is the annotated interchange format: values plus entity URIs,
// mirroring the WikiTables benchmark files that carry per-cell DBpedia
// links.
type jsonTable struct {
	Name       string       `json:"name"`
	Attributes []string     `json:"attributes"`
	Categories []string     `json:"categories,omitempty"`
	Rows       [][]jsonCell `json:"rows"`
}

type jsonCell struct {
	Value  string `json:"v"`
	Entity string `json:"e,omitempty"`
}

// WriteJSON serializes t including entity links, resolving entity IDs to
// URIs through g.
func WriteJSON(t *Table, g *kg.Graph, w io.Writer) error {
	jt := jsonTable{
		Name:       t.Name,
		Attributes: t.Attributes,
		Categories: t.Categories,
		Rows:       make([][]jsonCell, len(t.Rows)),
	}
	for i, row := range t.Rows {
		jr := make([]jsonCell, len(row))
		for j, c := range row {
			jr[j].Value = c.Value
			if e, ok := c.EntityID(); ok {
				jr[j].Entity = g.URI(e)
			}
		}
		jt.Rows[i] = jr
	}
	enc := json.NewEncoder(w)
	return enc.Encode(jt)
}

// ReadJSON parses the annotated format, interning any entity URIs into g.
// For streams holding multiple concatenated tables (JSONL corpora), use
// JSONReader instead: ReadJSON's decoder buffers ahead and discards
// whatever follows the first object.
func ReadJSON(g *kg.Graph, r io.Reader) (*Table, error) {
	return decodeTable(g, json.NewDecoder(r))
}

// JSONReader streams tables out of a concatenated JSON (JSONL) corpus.
type JSONReader struct {
	g   *kg.Graph
	dec *json.Decoder
}

// NewJSONReader creates a streaming reader over r, interning entities
// into g.
func NewJSONReader(g *kg.Graph, r io.Reader) *JSONReader {
	return &JSONReader{g: g, dec: json.NewDecoder(r)}
}

// Next returns the next table, or io.EOF when the stream ends.
func (jr *JSONReader) Next() (*Table, error) {
	if !jr.dec.More() {
		return nil, io.EOF
	}
	return decodeTable(jr.g, jr.dec)
}

func decodeTable(g *kg.Graph, dec *json.Decoder) (*Table, error) {
	var jt jsonTable
	if err := dec.Decode(&jt); err != nil {
		return nil, err
	}
	t := New(jt.Name, jt.Attributes)
	t.Categories = jt.Categories
	for i, jr := range jt.Rows {
		if len(jr) != len(jt.Attributes) {
			return nil, fmt.Errorf("table %q: row %d arity %d != schema arity %d", jt.Name, i, len(jr), len(jt.Attributes))
		}
		cells := make([]Cell, len(jr))
		for j, jc := range jr {
			cells[j] = Cell{Value: jc.Value}
			if jc.Entity != "" {
				cells[j].Entity = Ref(g.AddEntity(jc.Entity, ""))
			}
		}
		t.AppendRow(cells)
	}
	return t, nil
}
