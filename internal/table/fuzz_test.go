package table

import (
	"strings"
	"testing"

	"thetis/internal/kg"
)

// FuzzReadCSV: the CSV reader must never panic; successful parses must
// yield rectangular tables.
func FuzzReadCSV(f *testing.F) {
	f.Add("a,b\n1,2\n")
	f.Add("a,b\n1\n")
	f.Add("")
	f.Add("\"quoted,comma\",b\nx,y\n")
	f.Fuzz(func(t *testing.T, input string) {
		tbl, err := ReadCSV("fuzz", strings.NewReader(input))
		if err != nil {
			return
		}
		for i, row := range tbl.Rows {
			if len(row) != tbl.NumColumns() {
				t.Fatalf("row %d arity %d != %d", i, len(row), tbl.NumColumns())
			}
		}
	})
}

// FuzzReadJSON: the JSON codec must never panic; accepted tables must be
// rectangular with valid entity references.
func FuzzReadJSON(f *testing.F) {
	f.Add(`{"name":"t","attributes":["a"],"rows":[[{"v":"x","e":"uri"}]]}`)
	f.Add(`{"name":"t","attributes":[],"rows":[]}`)
	f.Add(`{"rows":[[{"v":"x"}],[{"v":"y"}]]}`)
	f.Add(`garbage`)
	f.Fuzz(func(t *testing.T, input string) {
		g := kg.NewGraph()
		tbl, err := ReadJSON(g, strings.NewReader(input))
		if err != nil {
			return
		}
		for _, row := range tbl.Rows {
			if len(row) != tbl.NumColumns() {
				t.Fatal("accepted ragged table")
			}
			for _, c := range row {
				if e, ok := c.EntityID(); ok && int(e) >= g.NumEntities() {
					t.Fatalf("dangling entity reference %d", e)
				}
			}
		}
	})
}
