package table

import (
	"bytes"
	"io"
	"testing"

	"thetis/internal/kg"
)

func TestJSONReaderStreamsMultipleTables(t *testing.T) {
	g := kg.NewGraph()
	e := g.AddEntity("dbr:E", "E")
	var buf bytes.Buffer
	for i := 0; i < 3; i++ {
		tb := New("t", []string{"a"})
		tb.AppendRow([]Cell{LinkedCell("E", e)})
		if err := WriteJSON(tb, g, &buf); err != nil {
			t.Fatal(err)
		}
	}
	jr := NewJSONReader(kg.NewGraph(), &buf)
	n := 0
	for {
		tb, err := jr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if !tb.Rows[0][0].Linked() {
			t.Error("link lost in stream")
		}
		n++
	}
	if n != 3 {
		t.Fatalf("streamed %d tables, want 3", n)
	}
}

func TestJSONReaderEmptyStream(t *testing.T) {
	jr := NewJSONReader(kg.NewGraph(), bytes.NewReader(nil))
	if _, err := jr.Next(); err != io.EOF {
		t.Errorf("empty stream Next = %v, want EOF", err)
	}
}

func TestJSONReaderMalformed(t *testing.T) {
	jr := NewJSONReader(kg.NewGraph(), bytes.NewReader([]byte("{not json")))
	if _, err := jr.Next(); err == nil || err == io.EOF {
		t.Errorf("malformed stream Next = %v, want parse error", err)
	}
}
