// Package table defines the data-lake table model: schemaless relational
// files whose cells hold string/number values, some of which carry entity
// annotations produced by an entity linker (the partial mapping Φ of
// Definition 2.1 in the paper).
package table

import (
	"fmt"

	"thetis/internal/kg"
)

// EntityRef is a nullable reference to a KG entity. The zero value means
// "no link", so that Cell's zero value is an unlinked cell; a non-zero value
// holds the entity ID plus one.
type EntityRef uint32

// Ref wraps a KG entity ID into a non-null reference.
func Ref(e kg.EntityID) EntityRef { return EntityRef(e) + 1 }

// NoEntity is the null entity reference.
const NoEntity = EntityRef(0)

// Entity unwraps the reference, reporting false for the null reference.
func (r EntityRef) Entity() (kg.EntityID, bool) {
	if r == NoEntity {
		return kg.InvalidEntity, false
	}
	return kg.EntityID(r - 1), true
}

// Cell is one attribute value of one tuple. Value holds the raw textual
// content; Entity holds the linked KG entity reference, if any.
type Cell struct {
	Value  string
	Entity EntityRef
}

// LinkedCell builds a cell annotated with entity e.
func LinkedCell(value string, e kg.EntityID) Cell {
	return Cell{Value: value, Entity: Ref(e)}
}

// Linked reports whether the cell carries an entity annotation.
func (c Cell) Linked() bool { return c.Entity != NoEntity }

// EntityID unwraps the cell's entity annotation.
func (c Cell) EntityID() (kg.EntityID, bool) { return c.Entity.Entity() }

// Table is one data lake file: an ordered set of attributes (columns) and
// tuples (rows) sharing that schema. Tables are identified within a lake by
// a dense integer ID assigned at ingestion.
type Table struct {
	// Name is the file or page name the table came from.
	Name string
	// Attributes are the column headers; may be empty strings for headerless
	// files but the slice length always equals the column count.
	Attributes []string
	// Rows holds the tuples; every row has exactly len(Attributes) cells.
	Rows [][]Cell
	// Categories are topical annotations (e.g. Wikipedia categories) used
	// only by benchmark ground truth, never by the search algorithms.
	Categories []string
}

// New creates an empty table with the given column headers.
func New(name string, attributes []string) *Table {
	return &Table{Name: name, Attributes: attributes}
}

// NumRows returns the number of tuples.
func (t *Table) NumRows() int { return len(t.Rows) }

// NumColumns returns the number of attributes.
func (t *Table) NumColumns() int { return len(t.Attributes) }

// AppendRow adds a tuple. It panics if the arity differs from the schema,
// since that is a programming error in ingestion code.
func (t *Table) AppendRow(cells []Cell) {
	if len(cells) != len(t.Attributes) {
		panic(fmt.Sprintf("table %q: row arity %d != schema arity %d", t.Name, len(cells), len(t.Attributes)))
	}
	t.Rows = append(t.Rows, cells)
}

// AppendValues adds a tuple of unlinked cells from raw strings.
func (t *Table) AppendValues(values ...string) {
	cells := make([]Cell, len(values))
	for i, v := range values {
		cells[i] = Cell{Value: v}
	}
	t.AppendRow(cells)
}

// Column returns the cells of column j in row order.
func (t *Table) Column(j int) []Cell {
	out := make([]Cell, len(t.Rows))
	for i, r := range t.Rows {
		out[i] = r[j]
	}
	return out
}

// ColumnEntities returns the distinct linked entities appearing in column j.
func (t *Table) ColumnEntities(j int) []kg.EntityID {
	seen := make(map[kg.EntityID]bool)
	var out []kg.EntityID
	for _, r := range t.Rows {
		if e, ok := r[j].EntityID(); ok && !seen[e] {
			seen[e] = true
			out = append(out, e)
		}
	}
	return out
}

// Entities returns the distinct linked entities in the whole table.
func (t *Table) Entities() []kg.EntityID {
	seen := make(map[kg.EntityID]bool)
	var out []kg.EntityID
	for _, r := range t.Rows {
		for _, c := range r {
			if e, ok := c.EntityID(); ok && !seen[e] {
				seen[e] = true
				out = append(out, e)
			}
		}
	}
	return out
}

// LinkCoverage returns the fraction of cells linked to a KG entity, the
// "Cov" statistic of Table 2 in the paper. An empty table has coverage 0.
func (t *Table) LinkCoverage() float64 {
	total, linked := 0, 0
	for _, r := range t.Rows {
		for _, c := range r {
			total++
			if c.Linked() {
				linked++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(linked) / float64(total)
}

// ClearLinks removes every entity annotation, leaving raw values intact.
// Used by experiments that re-link a corpus with a different linker.
func (t *Table) ClearLinks() {
	for _, r := range t.Rows {
		for i := range r {
			r[i].Entity = NoEntity
		}
	}
}

// Clone returns a deep copy of the table.
func (t *Table) Clone() *Table {
	c := &Table{
		Name:       t.Name,
		Attributes: append([]string(nil), t.Attributes...),
		Categories: append([]string(nil), t.Categories...),
		Rows:       make([][]Cell, len(t.Rows)),
	}
	for i, r := range t.Rows {
		c.Rows[i] = append([]Cell(nil), r...)
	}
	return c
}
