package table

import (
	"bytes"
	"strings"
	"testing"

	"thetis/internal/kg"
)

func sampleTable(g *kg.Graph) *Table {
	santo := g.AddEntity("dbr:Ron_Santo", "Ron Santo")
	cubs := g.AddEntity("dbr:Chicago_Cubs", "Chicago Cubs")
	t := New("players.csv", []string{"Player", "Team", "Avg"})
	t.AppendRow([]Cell{
		LinkedCell("Ron Santo", santo),
		LinkedCell("Chicago Cubs", cubs),
		{Value: ".277"},
	})
	t.AppendRow([]Cell{
		{Value: "Unknown Guy"},
		LinkedCell("Chicago Cubs", cubs),
		{Value: ".100"},
	})
	return t
}

func TestTableShape(t *testing.T) {
	g := kg.NewGraph()
	tbl := sampleTable(g)
	if tbl.NumRows() != 2 || tbl.NumColumns() != 3 {
		t.Fatalf("shape = %dx%d, want 2x3", tbl.NumRows(), tbl.NumColumns())
	}
}

func TestAppendRowArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("AppendRow with wrong arity did not panic")
		}
	}()
	tbl := New("t", []string{"a", "b"})
	tbl.AppendRow([]Cell{{Value: "only one"}})
}

func TestLinkCoverage(t *testing.T) {
	g := kg.NewGraph()
	tbl := sampleTable(g)
	got := tbl.LinkCoverage()
	want := 3.0 / 6.0
	if got != want {
		t.Errorf("LinkCoverage = %v, want %v", got, want)
	}
	empty := New("e", []string{"a"})
	if empty.LinkCoverage() != 0 {
		t.Error("empty table coverage should be 0")
	}
}

func TestEntitiesDistinct(t *testing.T) {
	g := kg.NewGraph()
	tbl := sampleTable(g)
	ents := tbl.Entities()
	if len(ents) != 2 {
		t.Errorf("Entities = %v, want 2 distinct", ents)
	}
	col := tbl.ColumnEntities(1)
	if len(col) != 1 {
		t.Errorf("ColumnEntities(1) = %v, want 1 distinct", col)
	}
	if len(tbl.ColumnEntities(2)) != 0 {
		t.Error("numeric column should have no entities")
	}
}

func TestClearLinks(t *testing.T) {
	g := kg.NewGraph()
	tbl := sampleTable(g)
	tbl.ClearLinks()
	if tbl.LinkCoverage() != 0 {
		t.Error("ClearLinks left annotations behind")
	}
	if tbl.Rows[0][0].Value != "Ron Santo" {
		t.Error("ClearLinks damaged raw values")
	}
}

func TestClone(t *testing.T) {
	g := kg.NewGraph()
	tbl := sampleTable(g)
	c := tbl.Clone()
	c.Rows[0][0].Value = "changed"
	c.Attributes[0] = "changed"
	if tbl.Rows[0][0].Value != "Ron Santo" || tbl.Attributes[0] != "Player" {
		t.Error("Clone shares storage with original")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	g := kg.NewGraph()
	tbl := sampleTable(g)
	var buf bytes.Buffer
	if err := WriteCSV(tbl, &buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV("players.csv", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != 2 || back.NumColumns() != 3 {
		t.Fatalf("round trip shape = %dx%d", back.NumRows(), back.NumColumns())
	}
	if back.Rows[1][0].Value != "Unknown Guy" {
		t.Errorf("cell = %q", back.Rows[1][0].Value)
	}
	if back.Rows[0][0].Linked() {
		t.Error("CSV codec should not carry links")
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV("e", strings.NewReader("")); err == nil {
		t.Error("empty CSV accepted")
	}
	if _, err := ReadCSV("r", strings.NewReader("a,b\n1,2,3\n")); err == nil {
		t.Error("ragged CSV accepted")
	}
}

func TestJSONRoundTripPreservesLinks(t *testing.T) {
	g := kg.NewGraph()
	tbl := sampleTable(g)
	tbl.Categories = []string{"baseball"}
	var buf bytes.Buffer
	if err := WriteJSON(tbl, g, &buf); err != nil {
		t.Fatal(err)
	}
	g2 := kg.NewGraph()
	back, err := ReadJSON(g2, &buf)
	if err != nil {
		t.Fatal(err)
	}
	e, ok := back.Rows[0][0].EntityID()
	if !ok {
		t.Fatal("entity link lost in JSON round trip")
	}
	if g2.URI(e) != "dbr:Ron_Santo" {
		t.Errorf("linked URI = %q", g2.URI(e))
	}
	if back.Rows[1][0].Linked() {
		t.Error("unlinked cell gained a link")
	}
	if len(back.Categories) != 1 || back.Categories[0] != "baseball" {
		t.Errorf("categories = %v", back.Categories)
	}
}

func TestReadJSONRaggedRow(t *testing.T) {
	g := kg.NewGraph()
	bad := `{"name":"t","attributes":["a","b"],"rows":[[{"v":"1"}]]}`
	if _, err := ReadJSON(g, strings.NewReader(bad)); err == nil {
		t.Error("ragged JSON row accepted")
	}
}
