package table

import (
	"io"
	"strings"
	"testing"

	"thetis/internal/kg"
	"thetis/internal/obs"
)

const dirtyJSONL = `{"name":"t1","attributes":["player","team"],"rows":[[{"v":"Santo","e":"e/santo"},{"v":"Cubs","e":"e/cubs"}]]}
{"name":"bad-json","attributes":["a"],"rows":[[{"v":
{"name":"bad-arity","attributes":["a","b"],"rows":[[{"v":"only-one","e":"e/poison"}]]}

{"name":"t2","attributes":["city"],"rows":[[{"v":"Chicago","e":"e/chicago"}]]}
`

func TestLenientJSONReader(t *testing.T) {
	g := kg.NewGraph()
	reg := obs.NewRegistry()
	q := obs.NewQuarantine(reg, "tables")
	jr := NewJSONReaderOpts(g, strings.NewReader(dirtyJSONL), ReadOptions{
		Lenient:     true,
		ErrorBudget: -1,
		Source:      "dirty.jsonl",
		Quarantine:  q,
	})
	var names []string
	for {
		tab, err := jr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		names = append(names, tab.Name)
	}
	if len(names) != 2 || names[0] != "t1" || names[1] != "t2" {
		t.Fatalf("surviving tables = %v, want [t1 t2]", names)
	}
	_, skipped := q.Counts()
	if skipped != 2 {
		t.Errorf("skipped = %d, want 2", skipped)
	}
	// The arity-mismatched table was rejected BEFORE interning entities:
	// e/poison must not be in the graph, only the 3 entities of good tables.
	if g.NumEntities() != 3 {
		t.Errorf("entities = %d, want 3 (rejected tables must not pollute the graph)", g.NumEntities())
	}
	recs := q.Records()
	if len(recs) != 2 || recs[0].Source != "dirty.jsonl" || recs[0].Line != 2 {
		t.Errorf("records = %+v", recs)
	}
}

func TestLenientJSONReaderBudget(t *testing.T) {
	g := kg.NewGraph()
	jr := NewJSONReaderOpts(g, strings.NewReader(dirtyJSONL), ReadOptions{Lenient: true, ErrorBudget: 1})
	var err error
	for err == nil {
		_, err = jr.Next()
	}
	if err == io.EOF || !strings.Contains(err.Error(), "budget") {
		t.Fatalf("budget of 1 with 2 bad tables: err = %v", err)
	}
}

func TestStrictJSONReaderStillAborts(t *testing.T) {
	g := kg.NewGraph()
	jr := NewJSONReader(g, strings.NewReader(dirtyJSONL))
	if _, err := jr.Next(); err != nil {
		t.Fatalf("first table: %v", err)
	}
	if _, err := jr.Next(); err == nil || err == io.EOF {
		t.Fatalf("strict reader on malformed table: err = %v", err)
	}
}

func TestLenientReadCSV(t *testing.T) {
	dirty := "player,team\nSanto,Cubs\nragged-row\nBanks,Cubs\n"
	reg := obs.NewRegistry()
	q := obs.NewQuarantine(reg, "tables")
	tab, err := ReadCSVOpts("roster", strings.NewReader(dirty), ReadOptions{
		Lenient: true, ErrorBudget: -1, Quarantine: q,
	})
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 2 {
		t.Errorf("rows = %d, want 2", tab.NumRows())
	}
	if _, skipped := q.Counts(); skipped != 1 {
		t.Errorf("skipped = %d, want 1", skipped)
	}

	// Strict mode still aborts on the same input.
	if _, err := ReadCSV("roster", strings.NewReader(dirty)); err == nil {
		t.Error("strict CSV read of ragged input succeeded")
	}

	// Lenient budget exceeded.
	if _, err := ReadCSVOpts("roster", strings.NewReader(dirty), ReadOptions{Lenient: true, ErrorBudget: 0}); err == nil || !strings.Contains(err.Error(), "budget") {
		t.Errorf("budget 0: err = %v", err)
	}
}
