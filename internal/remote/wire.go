// Package remote implements the shard-over-HTTP client side of the
// scatter-gather seam (docs/SHARDING.md): Shard satisfies the same
// contract as an in-process shard.Local but proxies SearchShard to a
// remote unsharded thetisd over POST /shard/search, translating the
// daemon's local table IDs into the coordinator's disjoint global ID
// space. Because a shard leg now crosses a network, the client wraps
// every leg in a robustness layer — per-attempt deadlines carved from the
// coordinator budget, bounded retry with exponential backoff and
// deterministic jitter, optional hedged requests after a latency
// percentile, N-replica failover with health probes, and a per-replica
// circuit breaker — and composes total failure into the same
// correctly ranked Truncated prefix an in-process deadline produces.
//
// The wire types in this file are shared with the server handlers
// (internal/server) and the bootstrap path (thetis.RemoteSharded): query
// tuples travel as entity URIs (process-independent, unlike the dense
// intern IDs), scores travel as JSON float64 (Go's encoder emits the
// shortest representation that round-trips bit-exactly), and every search
// response is wrapped in a CRC32C envelope so in-flight bit flips that
// survive HTTP framing are detected and retried rather than merged.
package remote

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
)

// SearchRequest is the body of POST /shard/search: one scatter leg.
type SearchRequest struct {
	// Tuples is the query, one slice of entity URIs per tuple. URIs make
	// the request process-independent: coordinator and shard daemons
	// intern entities in different orders, so dense IDs do not travel.
	Tuples [][]string `json:"tuples"`
	// K is the per-shard top-k (negative returns all scored tables).
	K int `json:"k"`
	// ForceFullScan bypasses the shard's LSEI, set by the coordinator on
	// the rescatter round after a globally empty prefilter
	// (shard.SearchOptions.ForceFullScan, carried verbatim).
	ForceFullScan bool `json:"force_full_scan,omitempty"`
}

// WireResult is one scored table in the remote daemon's LOCAL table ID
// space; the client translates it into the global range.
type WireResult struct {
	Table int32   `json:"table"`
	Score float64 `json:"score"`
}

// WireStats mirrors core.Stats across the wire (durations in
// microseconds; the Trace stays server-side — the client records its own
// remote-leg stages).
type WireStats struct {
	Candidates   int   `json:"candidates"`
	Scored       int   `json:"scored"`
	MappingMicro int64 `json:"mapping_us"`
	TotalMicro   int64 `json:"total_us"`
	Truncated    bool  `json:"truncated,omitempty"`
	Panicked     int   `json:"panicked,omitempty"`
	SigmaHits    int64 `json:"sigma_hits,omitempty"`
	SigmaMisses  int64 `json:"sigma_misses,omitempty"`
}

// SearchPayload is the meaningful content of a /shard/search response,
// carried inside Envelope.
type SearchPayload struct {
	Results []WireResult `json:"results"`
	Stats   WireStats    `json:"stats"`
}

// Envelope wraps a JSON payload with a CRC32C (Castagnoli) checksum over
// the exact payload bytes. HTTP gives no end-to-end integrity beyond TCP's
// weak checksum; a bit flip that keeps the JSON well-formed would
// otherwise corrupt a ranking silently. A mismatch is treated like any
// transport error: the attempt is retried.
type Envelope struct {
	CRC     uint32          `json:"crc32c"`
	Payload json.RawMessage `json:"payload"`
}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Seal marshals v and wraps it in a checksummed envelope.
func Seal(v any) ([]byte, error) {
	payload, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	return json.Marshal(Envelope{CRC: crc32.Checksum(payload, castagnoli), Payload: payload})
}

// Open verifies data's envelope checksum and unmarshals the payload
// into v.
func Open(data []byte, v any) error {
	var env Envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return fmt.Errorf("remote: envelope: %w", err)
	}
	if got := crc32.Checksum(env.Payload, castagnoli); got != env.CRC {
		return fmt.Errorf("remote: payload checksum mismatch (got %08x, want %08x)", got, env.CRC)
	}
	if err := json.Unmarshal(env.Payload, v); err != nil {
		return fmt.Errorf("remote: payload: %w", err)
	}
	return nil
}

// IndexSpec tells a shard daemon to build its LSEI with the given
// configuration (mirrors core.LSEIConfig minus process-local state).
type IndexSpec struct {
	Vectors           int     `json:"vectors"`
	BandSize          int     `json:"band_size"`
	Threshold         float64 `json:"threshold"`
	ColumnAggregation bool    `json:"column_aggregation,omitempty"`
	Seed              int64   `json:"seed"`
}

// Artifacts is the body of POST /shard/artifacts: the bootstrap payload
// that makes a remote shard rank exactly like a slice of the unsharded
// system. It carries the two global quantities a shard cannot compute
// from its own slice (docs/SHARDING.md): the corpus-wide IDF
// informativeness table and the frequent-type filter, plus the votes and
// index configuration so every shard prefilteres identically.
type Artifacts struct {
	// Informativeness maps entity URI to the corpus-global IDF weight.
	// Only entities that occur in the corpus are listed (df > 0);
	// everything else weighs 1, matching core.IDFInformativenessOver.
	Informativeness map[string]float64 `json:"informativeness"`
	// FrequentTypes lists type URIs the global filter drops from LSEI
	// signatures. Meaningful only when HasFilter is true (the embedding
	// similarity builds its LSEI without a type filter).
	FrequentTypes []string `json:"frequent_types,omitempty"`
	// HasFilter distinguishes "type filter with these members" from "no
	// type filter shipped".
	HasFilter bool `json:"has_filter,omitempty"`
	// Votes is the LSEI vote threshold every shard must share.
	Votes int `json:"votes"`
	// Index, when non-nil, asks the daemon to (re)build its LSEI with
	// this configuration under the shipped filter.
	Index *IndexSpec `json:"index,omitempty"`
}
