package remote

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"thetis/internal/core"
	"thetis/internal/kg"
	"thetis/internal/lake"
	"thetis/internal/obs"
	"thetis/internal/shard"
)

// testGraph interns the handful of entities the wire tests query with.
func testGraph(t *testing.T) *kg.Graph {
	t.Helper()
	g := kg.NewGraph()
	g.AddEntity("http://x/e0", "e0")
	g.AddEntity("http://x/e1", "e1")
	return g
}

func testQuery(g *kg.Graph) core.Query {
	e0, _ := g.Lookup("http://x/e0")
	e1, _ := g.Lookup("http://x/e1")
	return core.Query{{e0, e1}}
}

// sealedPayload builds a valid /shard/search response body.
func sealedPayload(t *testing.T, p SearchPayload) []byte {
	t.Helper()
	b, err := Seal(p)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// shardHandler answers /shard/search with the given payload and lets the
// test script the first n responses as HTTP 500s.
func shardHandler(t *testing.T, p SearchPayload, fail500 *atomic.Int32) http.HandlerFunc {
	body := sealedPayload(t, p)
	return func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/shard/search" {
			http.NotFound(w, r)
			return
		}
		if fail500 != nil && fail500.Add(-1) >= 0 {
			http.Error(w, "injected", http.StatusInternalServerError)
			return
		}
		w.Write(body)
	}
}

func fastOpts(seed int64) Options {
	return Options{
		MaxAttempts:    3,
		AttemptTimeout: time.Second,
		BackoffBase:    time.Millisecond,
		BackoffMax:     2 * time.Millisecond,
		Seed:           seed,
	}
}

func TestRemoteShardEnvelopeDetectsCorruption(t *testing.T) {
	b, err := Seal(SearchRequest{Tuples: [][]string{{"http://x/e0"}}, K: 5})
	if err != nil {
		t.Fatal(err)
	}
	var rt SearchRequest
	if err := Open(b, &rt); err != nil {
		t.Fatalf("clean envelope rejected: %v", err)
	}
	if rt.K != 5 || len(rt.Tuples) != 1 {
		t.Fatalf("round trip lost data: %+v", rt)
	}
	// Flip one payload bit: the checksum must catch it even though the
	// JSON may stay well-formed.
	bad := append([]byte(nil), b...)
	i := strings.Index(string(bad), "e0")
	bad[i] ^= 0x01
	if err := Open(bad, &rt); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("corrupted envelope accepted (err = %v)", err)
	}
}

func TestRemoteShardBreakerTransitions(t *testing.T) {
	now := time.Unix(0, 0)
	b := newBreaker(2, time.Second)
	b.now = func() time.Time { return now }
	if ok, probe := b.acquire(); !ok || probe {
		t.Fatalf("new breaker acquire = (%v, %v), want (true, false)", ok, probe)
	}
	b.fail()
	if st, fails := b.snapshot(); st != breakerClosed || fails != 1 {
		t.Fatalf("after 1 failure: %v/%d", st, fails)
	}
	b.fail() // threshold reached
	if st, _ := b.snapshot(); st != breakerOpen {
		t.Fatalf("after threshold failures: %v, want open", st)
	}
	if ok, _ := b.acquire(); ok {
		t.Fatal("open breaker admitted traffic before cooldown")
	}
	now = now.Add(time.Second) // cooldown elapses
	if ok, probe := b.acquire(); !ok || !probe {
		t.Fatalf("cooled-down acquire = (%v, %v), want (true, true)", ok, probe)
	}
	if st, _ := b.snapshot(); st != breakerHalfOpen {
		t.Fatalf("state after probe admission: %v, want half-open", st)
	}
	if ok, _ := b.acquire(); ok {
		t.Fatal("half-open breaker admitted a second probe")
	}
	b.fail() // probe failed: back to open
	if st, _ := b.snapshot(); st != breakerOpen {
		t.Fatalf("state after failed probe: %v, want open", st)
	}
	now = now.Add(time.Second)
	b.acquire()
	b.success() // probe succeeded: closed
	if st, _ := b.snapshot(); st != breakerClosed {
		t.Fatalf("state after successful probe: %v, want closed", st)
	}
}

// TestRemoteShardBreakerAbandonReleasesProbe is the wedge regression: a
// half-open probe whose outcome is discarded (hedge-winner cancellation,
// caller gave up) must release the slot so the next acquire re-probes,
// instead of leaving the breaker half-open-and-rejecting forever.
func TestRemoteShardBreakerAbandonReleasesProbe(t *testing.T) {
	now := time.Unix(0, 0)
	b := newBreaker(1, time.Second)
	b.now = func() time.Time { return now }
	b.fail() // trips at threshold 1
	now = now.Add(time.Second)
	if ok, probe := b.acquire(); !ok || !probe {
		t.Fatalf("cooled-down acquire = (%v, %v), want (true, true)", ok, probe)
	}
	if ok, _ := b.acquire(); ok {
		t.Fatal("probe slot leased twice")
	}
	b.abandon() // outcome discarded
	if st, _ := b.snapshot(); st != breakerHalfOpen {
		t.Fatalf("state after abandon: %v, want half-open", st)
	}
	if ok, probe := b.acquire(); !ok || !probe {
		t.Fatalf("acquire after abandon = (%v, %v), want (true, true) — breaker wedged", ok, probe)
	}
	b.success()
	if st, _ := b.snapshot(); st != breakerClosed {
		t.Fatalf("state after probe success: %v, want closed", st)
	}
	// abandon on a closed breaker is a no-op, not a state change.
	b.abandon()
	if st, _ := b.snapshot(); st != breakerClosed {
		t.Fatal("abandon disturbed a closed breaker")
	}
}

// TestRemoteShardPickReplicaSparesProbeSlots: pickReplica must not consume
// a cooled-down replica's half-open probe slot while choosing a different
// replica — the skipped replica would be wedged half-open with no request
// to record an outcome, invisible to searches and to ProbeOnce alike.
func TestRemoteShardPickReplicaSparesProbeSlots(t *testing.T) {
	g := testGraph(t)
	s, err := NewShard("t-spare", g, nil,
		[]Replica{{URL: "http://a.invalid"}, {URL: "http://b.invalid"}}, fastOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	// Replica 0 tripped and cooled down: its breaker would admit a probe.
	now := time.Unix(0, 0)
	s.replicas[0].br.now = func() time.Time { return now }
	for i := 0; i < s.opt.BreakerThreshold; i++ {
		s.replicas[0].br.fail()
	}
	now = now.Add(s.opt.BreakerCooldown)
	// Replica 0 is also the one that just failed: every pick must choose
	// replica 1 and leave replica 0's probe slot un-leased.
	for i := 0; i < 4; i++ {
		ri, probe := s.pickReplica(0)
		if ri != 1 || probe {
			t.Fatalf("pickReplica(last=0) = (%d, %v), want (1, false)", ri, probe)
		}
	}
	if st, _ := s.replicas[0].br.snapshot(); st != breakerOpen {
		t.Fatalf("skipped replica's breaker %v, want open (slot untouched)", st)
	}
	// The slot is still available to whoever actually sends: half-open.
	if ok, probe := s.replicas[0].br.acquire(); !ok || !probe {
		t.Fatalf("skipped replica cannot probe: (%v, %v)", ok, probe)
	}
}

func TestRemoteShardRetriesThenSucceeds(t *testing.T) {
	g := testGraph(t)
	want := SearchPayload{
		Results: []WireResult{{Table: 1, Score: 0.9}, {Table: 0, Score: 0.4}},
		Stats:   WireStats{Candidates: 2, Scored: 2},
	}
	var fail atomic.Int32
	fail.Store(2) // first two attempts answer 500
	srv := httptest.NewServer(shardHandler(t, want, &fail))
	defer srv.Close()

	s, err := NewShard("t-retry", g, []lake.TableID{10, 11}, []Replica{{URL: srv.URL}}, fastOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	before := obs.RemoteShardRetriesTotal("t-retry").Value()
	results, stats := s.SearchShard(context.Background(), testQuery(g), 2, shard.SearchOptions{})
	if stats.Truncated {
		t.Fatalf("leg truncated after successful retry: %+v", stats.ShardErrors)
	}
	if len(results) != 2 || results[0].Table != 11 || results[1].Table != 10 {
		t.Fatalf("global translation wrong: %+v", results)
	}
	if results[0].Score != 0.9 {
		t.Fatalf("score lost: %+v", results[0])
	}
	if got := obs.RemoteShardRetriesTotal("t-retry").Value() - before; got != 2 {
		t.Fatalf("retries counter advanced by %d, want 2", got)
	}
}

func TestRemoteShardFailsOverToHealthyReplica(t *testing.T) {
	g := testGraph(t)
	want := SearchPayload{Results: []WireResult{{Table: 0, Score: 1}}}
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close() // connection refused from now on
	live := httptest.NewServer(shardHandler(t, want, nil))
	defer live.Close()

	s, err := NewShard("t-failover", g, []lake.TableID{7},
		[]Replica{{URL: dead.URL}, {URL: live.URL}}, fastOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	before := obs.RemoteShardFailoversTotal("t-failover").Value()
	// Run a few searches: whichever replica round-robin tries first, every
	// search must land on the live one.
	for i := 0; i < 4; i++ {
		results, stats := s.SearchShard(context.Background(), testQuery(g), 1, shard.SearchOptions{})
		if stats.Truncated || len(results) != 1 || results[0].Table != 7 {
			t.Fatalf("search %d: results %+v stats %+v", i, results, stats)
		}
	}
	if got := obs.RemoteShardFailoversTotal("t-failover").Value(); got == before {
		t.Fatal("no failover recorded despite a dead replica in rotation")
	}
}

func TestRemoteShardAllAttemptsFailDegrades(t *testing.T) {
	g := testGraph(t)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer srv.Close()

	s, err := NewShard("t-dead", g, []lake.TableID{3}, []Replica{{URL: srv.URL}}, fastOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	results, stats := s.SearchShard(context.Background(), testQuery(g), 1, shard.SearchOptions{})
	if len(results) != 0 {
		t.Fatalf("dead shard returned results: %+v", results)
	}
	if !stats.Truncated {
		t.Fatal("dead shard must mark Truncated")
	}
	if len(stats.ShardErrors) != 3 {
		t.Fatalf("want one ShardErrors entry per attempt (3), got %v", stats.ShardErrors)
	}
	for i, e := range stats.ShardErrors {
		if !strings.Contains(e, "http 500") {
			t.Fatalf("error %d does not carry the cause: %q", i, e)
		}
	}
}

func TestRemoteShardBreakerTripsAndRecovers(t *testing.T) {
	g := testGraph(t)
	want := SearchPayload{Results: []WireResult{{Table: 0, Score: 1}}}
	var healthy atomic.Bool
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/readyz" {
			w.WriteHeader(http.StatusOK)
			return
		}
		if !healthy.Load() {
			http.Error(w, "down", http.StatusInternalServerError)
			return
		}
		shardHandler(t, want, nil)(w, r)
	}))
	defer srv.Close()

	opt := fastOpts(1)
	opt.BreakerThreshold = 2
	opt.BreakerCooldown = 10 * time.Millisecond
	s, err := NewShard("t-breaker", g, []lake.TableID{5}, []Replica{{URL: srv.URL}}, opt)
	if err != nil {
		t.Fatal(err)
	}
	before := obs.RemoteShardBreakerOpenTotal("t-breaker").Value()
	_, stats := s.SearchShard(context.Background(), testQuery(g), 1, shard.SearchOptions{})
	if !stats.Truncated {
		t.Fatal("failing replica must truncate")
	}
	if obs.RemoteShardBreakerOpenTotal("t-breaker").Value() == before {
		t.Fatal("breaker never tripped")
	}
	if s.Healthy() {
		t.Fatal("shard reports healthy with its only breaker open")
	}
	st := s.Status()
	if len(st.Replicas) != 1 || st.Replicas[0].Breaker == "closed" {
		t.Fatalf("status must surface the open breaker: %+v", st)
	}

	// Replica heals; the background probe path re-admits it after cooldown.
	healthy.Store(true)
	time.Sleep(15 * time.Millisecond)
	s.ProbeOnce(context.Background())
	if !s.Healthy() {
		t.Fatalf("probe did not close the breaker: %+v", s.Status())
	}
	results, stats := s.SearchShard(context.Background(), testQuery(g), 1, shard.SearchOptions{})
	if stats.Truncated || len(results) != 1 || results[0].Table != 5 {
		t.Fatalf("recovered shard still failing: %+v / %+v", results, stats)
	}
}

// TestRemoteShardStalledReplicaTripsBreaker covers two review findings at
// once: an attempt that dies by its per-attempt deadline (mid-body stall,
// slow-loris) must count as a breaker failure — a consistently stalled
// replica is exactly what the breaker parks — and a half-open probe that
// dies the same way must re-open the breaker rather than wedge it
// half-open forever, which for a single-replica shard would silently kill
// the whole leg until restart.
func TestRemoteShardStalledReplicaTripsBreaker(t *testing.T) {
	g := testGraph(t)
	want := SearchPayload{Results: []WireResult{{Table: 0, Score: 1}}}
	body := sealedPayload(t, want)
	var stalled atomic.Bool
	stalled.Store(true)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/readyz" {
			w.WriteHeader(http.StatusOK)
			return
		}
		if stalled.Load() {
			select { // hold the request until the client's deadline kills it
			case <-r.Context().Done():
			case <-time.After(5 * time.Second):
			}
			return
		}
		w.Write(body)
	}))
	defer srv.Close()

	opt := fastOpts(1)
	opt.MaxAttempts = 1
	opt.AttemptTimeout = 20 * time.Millisecond
	opt.BreakerThreshold = 1
	opt.BreakerCooldown = 10 * time.Millisecond
	s, err := NewShard("t-stall", g, []lake.TableID{5}, []Replica{{URL: srv.URL}}, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Attempt 1 burns its deadline: that MUST be a breaker failure.
	_, stats := s.SearchShard(context.Background(), testQuery(g), 1, shard.SearchOptions{})
	if !stats.Truncated {
		t.Fatal("stalled replica did not truncate")
	}
	if st, _ := s.replicas[0].br.snapshot(); st != breakerOpen {
		t.Fatalf("breaker %v after a stalled attempt, want open", st)
	}
	// Cooldown elapses; the next search consumes the half-open probe and
	// stalls again: the breaker must return to open, not wedge half-open.
	time.Sleep(15 * time.Millisecond)
	_, stats = s.SearchShard(context.Background(), testQuery(g), 1, shard.SearchOptions{})
	if !stats.Truncated {
		t.Fatal("still-stalled replica did not truncate")
	}
	if st, _ := s.replicas[0].br.snapshot(); st != breakerOpen {
		t.Fatalf("breaker %v after a stalled probe, want open (wedged?)", st)
	}
	// Replica heals: the background probe path must recover the leg.
	stalled.Store(false)
	time.Sleep(15 * time.Millisecond)
	s.ProbeOnce(context.Background())
	if !s.Healthy() {
		t.Fatalf("probe did not recover the healed replica: %+v", s.Status())
	}
	results, stats := s.SearchShard(context.Background(), testQuery(g), 1, shard.SearchOptions{})
	if stats.Truncated || len(results) != 1 || results[0].Table != 5 {
		t.Fatalf("recovered shard still failing: %+v / %+v", results, stats)
	}
}

// TestRemoteShardProbeRejectsForeignService: a /readyz answer outside the
// statuses the endpoint emits (200, 503) — a 404 from some other service
// squatting on the replica's port — must not close the breaker and
// re-admit a replica that cannot actually serve /shard/search.
func TestRemoteShardProbeRejectsForeignService(t *testing.T) {
	g := testGraph(t)
	srv := httptest.NewServer(http.NotFoundHandler()) // 404 to everything
	defer srv.Close()

	opt := fastOpts(1)
	opt.BreakerThreshold = 1
	opt.BreakerCooldown = time.Millisecond
	s, err := NewShard("t-foreign-probe", g, nil, []Replica{{URL: srv.URL}}, opt)
	if err != nil {
		t.Fatal(err)
	}
	s.replicas[0].br.fail() // parked
	time.Sleep(5 * time.Millisecond)
	s.ProbeOnce(context.Background())
	if s.Healthy() {
		t.Fatalf("404-answering replica re-admitted: %+v", s.Status())
	}
	if st, _ := s.replicas[0].br.snapshot(); st != breakerOpen {
		t.Fatalf("breaker %v after foreign-service probe, want open", st)
	}
}

func TestRemoteShardHedgesSlowPrimary(t *testing.T) {
	g := testGraph(t)
	want := SearchPayload{Results: []WireResult{{Table: 0, Score: 1}}}
	body := sealedPayload(t, want)
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done():
		case <-time.After(2 * time.Second):
			w.Write(body)
		}
	}))
	defer slow.Close()
	fast := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write(body)
	}))
	defer fast.Close()

	opt := fastOpts(1)
	opt.HedgeDelay = 5 * time.Millisecond
	opt.MaxAttempts = 1
	s, err := NewShard("t-hedge", g, []lake.TableID{9},
		[]Replica{{URL: slow.URL}, {URL: fast.URL}}, opt)
	if err != nil {
		t.Fatal(err)
	}
	before := obs.RemoteShardHedgesTotal("t-hedge").Value()
	// Whichever replica is primary, the race must finish fast: either the
	// fast replica was primary, or the hedge fired and won.
	deadline := time.Now().Add(time.Second)
	hedged := false
	for time.Now().Before(deadline) && !hedged {
		results, stats := s.SearchShard(context.Background(), testQuery(g), 1, shard.SearchOptions{})
		if stats.Truncated || len(results) != 1 {
			t.Fatalf("hedged search failed: %+v / %+v", results, stats)
		}
		hedged = obs.RemoteShardHedgesTotal("t-hedge").Value() > before
	}
	if !hedged {
		t.Fatal("hedge never fired against a 2s-slow primary with a 5ms hedge delay")
	}
}

func TestRemoteShardRejectsForeignTableIDs(t *testing.T) {
	g := testGraph(t)
	// The daemon answers with local table 40, but this shard only owns 2
	// tables: merging would index out of the global map.
	srv := httptest.NewServer(shardHandler(t, SearchPayload{
		Results: []WireResult{{Table: 40, Score: 1}},
	}, nil))
	defer srv.Close()
	opt := fastOpts(1)
	opt.MaxAttempts = 1
	s, err := NewShard("t-foreign", g, []lake.TableID{0, 1}, []Replica{{URL: srv.URL}}, opt)
	if err != nil {
		t.Fatal(err)
	}
	results, stats := s.SearchShard(context.Background(), testQuery(g), 1, shard.SearchOptions{})
	if len(results) != 0 || !stats.Truncated {
		t.Fatalf("foreign table ID merged: %+v / %+v", results, stats)
	}
	if len(stats.ShardErrors) == 0 || !strings.Contains(stats.ShardErrors[0], "outside shard") {
		t.Fatalf("cause not surfaced: %v", stats.ShardErrors)
	}
}

func TestRemoteShardAttemptTimeoutCarvesBudget(t *testing.T) {
	g := testGraph(t)
	s, err := NewShard("t-budget", g, nil, []Replica{{URL: "http://127.0.0.1:0"}}, Options{AttemptTimeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	// No deadline: the configured attempt timeout applies.
	if d := s.attemptTimeout(context.Background(), 3); d != time.Second {
		t.Fatalf("no-deadline attempt timeout %v, want 1s", d)
	}
	// 30ms budget across 3 attempts: ~10ms each, never the full second.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if d := s.attemptTimeout(ctx, 3); d > 11*time.Millisecond || d < time.Millisecond {
		t.Fatalf("carved attempt timeout %v, want ~10ms", d)
	}
}

func TestRemoteShardLatencyPercentile(t *testing.T) {
	var l latencies
	if _, ok := l.percentile(0.95); ok {
		t.Fatal("percentile available before sampleMin observations")
	}
	for i := 1; i <= 20; i++ {
		l.add(time.Duration(i) * time.Millisecond)
	}
	p, ok := l.percentile(0.5)
	if !ok {
		t.Fatal("percentile unavailable after 20 observations")
	}
	if p < 5*time.Millisecond || p > 15*time.Millisecond {
		t.Fatalf("p50 of 1..20ms = %v, want near 10ms", p)
	}
}

func TestRemoteShardPushArtifactsRetries(t *testing.T) {
	g := testGraph(t)
	var fail atomic.Int32
	fail.Store(1)
	var applied atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/shard/artifacts" {
			http.NotFound(w, r)
			return
		}
		if fail.Add(-1) >= 0 {
			http.Error(w, "not yet", http.StatusInternalServerError)
			return
		}
		applied.Add(1)
		w.Write([]byte(`{"applied":true}`))
	}))
	defer srv.Close()

	s, err := NewShard("t-push", g, nil, []Replica{{URL: srv.URL}}, fastOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	a := Artifacts{Informativeness: map[string]float64{"http://x/e0": 2.5}, Votes: 3}
	if err := s.PushArtifacts(context.Background(), a); err != nil {
		t.Fatalf("push failed despite retry budget: %v", err)
	}
	if applied.Load() != 1 {
		t.Fatalf("artifacts applied %d times, want 1", applied.Load())
	}
}
