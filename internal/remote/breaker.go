package remote

import (
	"sync"
	"time"
)

// breakerState is a replica circuit breaker's lifecycle position.
type breakerState int

const (
	// breakerClosed: healthy, requests flow.
	breakerClosed breakerState = iota
	// breakerOpen: tripped after Threshold consecutive failures; requests
	// are parked until Cooldown elapses.
	breakerOpen
	// breakerHalfOpen: cooldown elapsed, exactly one probe request is
	// allowed through; its outcome decides closed vs open again.
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// breaker is a consecutive-failure circuit breaker guarding one replica.
// It parks a flapping replica for a cooldown instead of letting every
// search pay its timeout, then re-admits it through a single half-open
// probe (either a real search attempt or the background health probe).
//
// The half-open probe slot is a lease: acquire hands it out and every
// admitted probe MUST settle it through exactly one of success, fail, or
// abandon. Without abandon, a probe whose outcome is discarded (the
// request was never sent, or was cancelled by a hedge winner) would leave
// the breaker half-open with the slot consumed forever — the replica
// blackholed until restart.
type breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time // test seam; time.Now when nil

	mu       sync.Mutex
	state    breakerState
	probing  bool      // half-open probe slot is leased out
	failures int       // consecutive, in closed state
	openedAt time.Time // when the breaker last tripped
	onOpen   func()    // closed/half-open → open transition hook (metrics)
	onState  func(breakerState)
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	if threshold <= 0 {
		threshold = 3
	}
	if cooldown <= 0 {
		cooldown = 2 * time.Second
	}
	return &breaker{threshold: threshold, cooldown: cooldown}
}

func (b *breaker) clock() time.Time {
	if b.now != nil {
		return b.now()
	}
	return time.Now()
}

// acquire reports whether a request may be sent to this replica right
// now. probe is true when the admission consumed the single half-open
// probe slot (open→half-open transition, or a half-open breaker whose
// previous probe was abandoned); the caller then owns the slot and must
// settle it with success, fail, or abandon — never drop it. Callers must
// therefore only acquire for a request they will actually send.
func (b *breaker) acquire() (ok, probe bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true, false
	case breakerOpen:
		if b.clock().Sub(b.openedAt) >= b.cooldown {
			b.setState(breakerHalfOpen)
			b.probing = true
			return true, true
		}
		return false, false
	case breakerHalfOpen:
		if !b.probing {
			// The previous probe was abandoned without an outcome; lease
			// the slot to the next caller instead of wedging.
			b.probing = true
			return true, true
		}
		// One probe is already in flight; hold further traffic.
		return false, false
	}
	return false, false
}

// success records a request that completed cleanly.
func (b *breaker) success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures = 0
	b.probing = false
	if b.state != breakerClosed {
		b.setState(breakerClosed)
	}
}

// fail records a failed request.
func (b *breaker) fail() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		b.failures++
		if b.failures >= b.threshold {
			b.trip()
		}
	case breakerHalfOpen:
		// The probe failed: back to open, restart the cooldown.
		b.trip()
	case breakerOpen:
		// A request that was already in flight when the breaker tripped;
		// nothing to update.
	}
}

// abandon releases a half-open probe slot whose request recorded no
// outcome — it was cancelled by a hedge winner or by the caller giving
// up. The breaker stays half-open with the slot free, so the next
// acquire (search attempt or background probe) retries immediately.
func (b *breaker) abandon() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == breakerHalfOpen {
		b.probing = false
	}
}

// trip moves to open. Callers hold b.mu.
func (b *breaker) trip() {
	b.openedAt = b.clock()
	b.failures = 0
	b.probing = false
	b.setState(breakerOpen)
	if b.onOpen != nil {
		b.onOpen()
	}
}

// setState transitions state and fires the state hook. Callers hold b.mu.
func (b *breaker) setState(s breakerState) {
	b.state = s
	if b.onState != nil {
		b.onState(s)
	}
}

// snapshot returns the current state without transitions.
func (b *breaker) snapshot() (breakerState, int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state, b.failures
}
