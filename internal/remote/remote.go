package remote

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"thetis/internal/core"
	"thetis/internal/kg"
	"thetis/internal/lake"
	"thetis/internal/obs"
	"thetis/internal/shard"
)

// maxResponseBytes bounds how much of a /shard/search response the client
// will buffer, mirroring the server's own request-body cap.
const maxResponseBytes = 64 << 20

// Replica is one interchangeable daemon serving a shard's table slice.
type Replica struct {
	// URL is the daemon's base URL (e.g. "http://10.0.0.7:8080").
	URL string
	// Client performs the HTTP round trips; nil uses a default client.
	// Tests inject faultio.FaultTransport here.
	Client *http.Client
}

// Options tunes the robustness layer. The zero value gets sensible
// defaults (3 attempts, 2s per attempt, 5ms..250ms backoff, breaker
// threshold 3 / cooldown 2s, hedging off).
type Options struct {
	// MaxAttempts bounds search attempts per leg, across replicas
	// (default 3). Searches are idempotent, so retrying is always safe.
	MaxAttempts int
	// AttemptTimeout caps one attempt's wall time (default 2s). When the
	// incoming context carries a deadline, each attempt instead gets
	// min(AttemptTimeout, remaining/attemptsLeft) so the retry budget is
	// spent inside the coordinator's budget, not after it.
	AttemptTimeout time.Duration
	// BackoffBase and BackoffMax shape the exponential backoff between
	// attempts: min(BackoffMax, BackoffBase<<(attempt-1)), equal-jittered
	// (half fixed, half random). Defaults 5ms and 250ms.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// HedgeDelay, when positive, fires a duplicate request on a second
	// replica if the first has not answered within the delay; the first
	// success wins and the loser is cancelled. Zero disables hedging
	// unless HedgePercentile is set.
	HedgeDelay time.Duration
	// HedgePercentile, when in (0,1), derives the hedge delay from the
	// observed latency distribution of successful requests (e.g. 0.95
	// hedges requests slower than the p95) once enough samples exist;
	// until then HedgeDelay (if set) applies.
	HedgePercentile float64
	// BreakerThreshold trips a replica's circuit breaker after this many
	// consecutive failures (default 3); BreakerCooldown is how long it
	// stays parked before a half-open probe (default 2s).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// Seed makes the backoff jitter deterministic in tests (default 1).
	Seed int64
}

func (o *Options) withDefaults() Options {
	v := *o
	if v.MaxAttempts <= 0 {
		v.MaxAttempts = 3
	}
	if v.AttemptTimeout <= 0 {
		v.AttemptTimeout = 2 * time.Second
	}
	if v.BackoffBase <= 0 {
		v.BackoffBase = 5 * time.Millisecond
	}
	if v.BackoffMax <= 0 {
		v.BackoffMax = 250 * time.Millisecond
	}
	if v.BreakerThreshold <= 0 {
		v.BreakerThreshold = 3
	}
	if v.BreakerCooldown <= 0 {
		v.BreakerCooldown = 2 * time.Second
	}
	if v.Seed == 0 {
		v.Seed = 1
	}
	return v
}

// replica is one replica plus its client-side health state.
type replica struct {
	url    string
	client *http.Client
	br     *breaker
}

// Shard is the HTTP shard client: it satisfies shard.Searcher by proxying
// SearchShard to one of N interchangeable remote daemons and translating
// the winner's local table IDs into the coordinator's global ID space.
// See the package comment for the robustness contract.
//
// A Shard is safe for concurrent searches once constructed.
type Shard struct {
	label    string
	g        *kg.Graph
	globals  []lake.TableID
	replicas []*replica
	opt      Options

	rr  atomic.Uint32 // round-robin cursor
	lat latencies

	jmu sync.Mutex
	rng *rand.Rand

	mRetries   *obs.Counter
	mHedges    *obs.Counter
	mFailovers *obs.Counter
}

// NewShard builds the client for one shard. label names it in metrics and
// status ("0", "1", …); g is the coordinator's KG (query entity IDs are
// serialized through it as URIs); globals maps the daemon's dense local
// table IDs to lake-global IDs, in local ID order — it must list exactly
// the tables the daemon ingested, in the same order, or rankings are
// garbage (thetis.RemoteSharded derives it by re-running the
// deterministic partitioner).
func NewShard(label string, g *kg.Graph, globals []lake.TableID, replicas []Replica, opt Options) (*Shard, error) {
	if len(replicas) == 0 {
		return nil, fmt.Errorf("remote: shard %s: no replicas", label)
	}
	opt = opt.withDefaults()
	s := &Shard{
		label:      label,
		g:          g,
		globals:    globals,
		opt:        opt,
		rng:        rand.New(rand.NewSource(opt.Seed)),
		mRetries:   obs.RemoteShardRetriesTotal(label),
		mHedges:    obs.RemoteShardHedgesTotal(label),
		mFailovers: obs.RemoteShardFailoversTotal(label),
	}
	breakerOpens := obs.RemoteShardBreakerOpenTotal(label)
	for _, r := range replicas {
		url := strings.TrimRight(r.URL, "/")
		client := r.Client
		if client == nil {
			client = &http.Client{}
		}
		br := newBreaker(opt.BreakerThreshold, opt.BreakerCooldown)
		br.onOpen = breakerOpens.Inc
		up := obs.RemoteShardReplicaUp(label, url)
		up.Set(1)
		br.onState = func(st breakerState) {
			if st == breakerClosed {
				up.Set(1)
			} else {
				up.Set(0)
			}
		}
		s.replicas = append(s.replicas, &replica{url: url, client: client, br: br})
	}
	return s, nil
}

// Label returns the shard's metric/status label.
func (s *Shard) Label() string { return s.label }

// NumTables returns how many tables the remote daemon owns (the length of
// the global ID map).
func (s *Shard) NumTables() int { return len(s.globals) }

// SearchShard implements shard.Searcher over HTTP. It never returns an
// error: a leg whose every attempt fails composes into an empty
// correctly-ranked prefix with Stats.Truncated set and the per-attempt
// failures listed in Stats.ShardErrors — exactly how an in-process
// deadline or contained panic degrades.
func (s *Shard) SearchShard(ctx context.Context, q core.Query, k int, opts shard.SearchOptions) ([]core.Result, core.Stats) {
	start := time.Now()
	tr := obs.NewTrace("search")
	body, err := Seal(s.encodeRequest(q, k, opts))
	if err != nil {
		// Unserializable queries cannot exist (tuples are strings), but
		// degrade rather than panic if one ever does.
		return nil, core.Stats{
			Truncated:   true,
			ShardErrors: []string{"encode: " + err.Error()},
			Trace:       tr,
		}
	}

	var errs []string
	last := -1
	attempts := 0
	for attempt := 1; attempt <= s.opt.MaxAttempts; attempt++ {
		if ctx.Err() != nil {
			errs = append(errs, "context: "+ctx.Err().Error())
			break
		}
		ri, probe := s.pickReplica(last)
		if ri < 0 {
			errs = append(errs, "no replica available (all circuit breakers open)")
			break
		}
		if attempt > 1 {
			s.mRetries.Inc()
		}
		if last >= 0 && ri != last {
			s.mFailovers.Inc()
		}
		last = ri
		attempts++

		actx, cancel := context.WithTimeout(ctx, s.attemptTimeout(ctx, s.opt.MaxAttempts-attempt+1))
		payload, aerr := s.tryHedged(actx, ri, probe, body)
		cancel()
		if aerr == nil {
			results, stats := s.decode(payload)
			stats.Trace = tr
			tr.Add(obs.Stage{Name: "remote", Wall: time.Since(start), Items: attempts})
			return results, stats
		}
		errs = append(errs, fmt.Sprintf("attempt %d: %v", attempt, aerr))
		if attempt < s.opt.MaxAttempts {
			s.sleepBackoff(ctx, attempt)
		}
	}
	tr.Add(obs.Stage{Name: "remote", Wall: time.Since(start), Items: attempts})
	return nil, core.Stats{Truncated: true, ShardErrors: errs, Trace: tr}
}

// encodeRequest serializes q as entity URIs — the process-independent
// entity names — plus the scatter options.
func (s *Shard) encodeRequest(q core.Query, k int, opts shard.SearchOptions) SearchRequest {
	tuples := make([][]string, len(q))
	for i, tup := range q {
		uris := make([]string, len(tup))
		for j, e := range tup {
			uris[j] = s.g.URI(e)
		}
		tuples[i] = uris
	}
	return SearchRequest{Tuples: tuples, K: k, ForceFullScan: opts.ForceFullScan}
}

// decode translates a verified payload into global-ID results and stats.
func (s *Shard) decode(p *SearchPayload) ([]core.Result, core.Stats) {
	results := make([]core.Result, len(p.Results))
	for i, wr := range p.Results {
		results[i] = core.Result{Table: s.globals[wr.Table], Score: wr.Score}
	}
	return results, core.Stats{
		Candidates:  p.Stats.Candidates,
		Scored:      p.Stats.Scored,
		MappingTime: time.Duration(p.Stats.MappingMicro) * time.Microsecond,
		TotalTime:   time.Duration(p.Stats.TotalMicro) * time.Microsecond,
		Truncated:   p.Stats.Truncated,
		Panicked:    p.Stats.Panicked,
		SigmaHits:   p.Stats.SigmaHits,
		SigmaMisses: p.Stats.SigmaMisses,
	}
}

// attemptTimeout carves one attempt's deadline out of the remaining
// context budget: min(AttemptTimeout, remaining/attemptsLeft), floored at
// 1ms so the final sliver still gets a real attempt.
func (s *Shard) attemptTimeout(ctx context.Context, attemptsLeft int) time.Duration {
	d := s.opt.AttemptTimeout
	if dl, ok := ctx.Deadline(); ok {
		if rem := time.Until(dl); rem > 0 {
			if per := rem / time.Duration(attemptsLeft); per < d {
				d = per
			}
		}
	}
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return d
}

// sleepBackoff waits min(BackoffMax, BackoffBase<<(attempt-1)) with equal
// jitter (half fixed, half uniform random), or returns early when ctx
// dies.
func (s *Shard) sleepBackoff(ctx context.Context, attempt int) {
	d := s.opt.BackoffBase << uint(attempt-1)
	if d > s.opt.BackoffMax || d <= 0 {
		d = s.opt.BackoffMax
	}
	s.jmu.Lock()
	d = d/2 + time.Duration(s.rng.Int63n(int64(d/2)+1))
	s.jmu.Unlock()
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// pickReplica chooses the next replica whose breaker admits traffic,
// round-robin, preferring one different from the replica that just failed
// (failover) when more than one is available. probe is true when the
// admission consumed the replica's half-open probe slot; the caller must
// then guarantee the request settles it (tryHedged does). acquire is only
// called on a replica that is actually returned — probing a replica and
// then skipping it would consume its probe slot with no request to record
// an outcome, wedging the breaker half-open forever.
func (s *Shard) pickReplica(last int) (ri int, probe bool) {
	n := len(s.replicas)
	start := int(s.rr.Add(1)) % n
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < n; i++ {
			ri := (start + i) % n
			// Pass 0 considers only failover candidates (ri != last);
			// pass 1 falls back to the replica that just failed.
			if (ri == last) != (pass == 1) {
				continue
			}
			if ok, probe := s.replicas[ri].br.acquire(); ok {
				return ri, probe
			}
		}
	}
	return -1, false
}

// pickHedge chooses a replica other than primary for a hedged request,
// without preferring freshness (any admitted replica will do). Like
// pickReplica it only acquires the replica it returns.
func (s *Shard) pickHedge(primary int) (ri int, probe bool) {
	n := len(s.replicas)
	if n < 2 {
		return -1, false
	}
	start := int(s.rr.Add(1)) % n
	for i := 0; i < n; i++ {
		ri := (start + i) % n
		if ri == primary {
			continue
		}
		if ok, probe := s.replicas[ri].br.acquire(); ok {
			return ri, probe
		}
	}
	return -1, false
}

// hedgeDelay resolves the configured hedging policy to a concrete delay:
// the sampled latency percentile once enough successes have been
// observed, else the static HedgeDelay, else 0 (off).
func (s *Shard) hedgeDelay() time.Duration {
	if p := s.opt.HedgePercentile; p > 0 && p < 1 {
		if d, ok := s.lat.percentile(p); ok {
			return d
		}
	}
	return s.opt.HedgeDelay
}

// tryHedged runs one attempt against primary, racing a hedged duplicate
// on another replica if the hedge delay elapses first. The first success
// wins and cancels the loser. Breaker bookkeeping happens per completed
// sub-request and every sub-request settles: successes close; failures —
// including an attempt that burned its whole per-attempt deadline, the
// stalled-replica case the breaker exists for — count against the replica
// that served them; only a loser we cancelled ourselves after a winner
// (settled), or a request cut short because the caller gave up, records
// no outcome — and if it held a half-open probe slot, the slot is
// released (breaker.abandon) rather than leaked.
func (s *Shard) tryHedged(ctx context.Context, primary int, primaryProbe bool, body []byte) (*SearchPayload, error) {
	hd := s.hedgeDelay()
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// settled flips before the winner's return cancels the losers, so a
	// loser can tell our own cancellation from a real failure: deadline
	// expiry (slow-loris, mid-body stall) arrives as DeadlineExceeded with
	// settled still false and must trip the breaker.
	var settled atomic.Bool
	type outcome struct {
		p   *SearchPayload
		err error
		ri  int
	}
	ch := make(chan outcome, 2)
	launch := func(ri int, probe bool) {
		go func() {
			p, err := s.do(cctx, ri, body)
			br := s.replicas[ri].br
			switch {
			case err == nil:
				br.success()
			case settled.Load() || errors.Is(err, context.Canceled):
				// Cancelled — by us after a winner, or by the caller giving
				// up — so the replica's health is unknown: no outcome, but
				// a held probe slot must not leak.
				if probe {
					br.abandon()
				}
			default:
				br.fail()
			}
			ch <- outcome{p, err, ri}
		}()
	}
	launch(primary, primaryProbe)

	var hedgeC <-chan time.Time
	if hd > 0 && len(s.replicas) > 1 {
		t := time.NewTimer(hd)
		defer t.Stop()
		hedgeC = t.C
	}

	inflight := 1
	var firstErr error
	for {
		select {
		case out := <-ch:
			inflight--
			if out.err == nil {
				settled.Store(true)
				return out.p, nil
			}
			if firstErr == nil {
				firstErr = fmt.Errorf("%s: %w", s.replicas[out.ri].url, out.err)
			}
			if inflight == 0 {
				return nil, firstErr
			}
		case <-hedgeC:
			hedgeC = nil
			if ri, probe := s.pickHedge(primary); ri >= 0 {
				s.mHedges.Inc()
				inflight++
				launch(ri, probe)
			}
		}
	}
}

// do performs one HTTP round trip against replica ri, verifies the CRC
// envelope, and validates that every returned table ID is inside the
// shard's local ID space (a daemon serving the wrong corpus slice must
// not be merged).
func (s *Shard) do(ctx context.Context, ri int, body []byte) (*SearchPayload, error) {
	r := s.replicas[ri]
	start := time.Now()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, r.url+"/shard/search", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := r.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("http %d: %s", resp.StatusCode, firstLine(data))
	}
	var p SearchPayload
	if err := Open(data, &p); err != nil {
		return nil, err
	}
	for _, wr := range p.Results {
		if wr.Table < 0 || int(wr.Table) >= len(s.globals) {
			return nil, fmt.Errorf("remote: table id %d outside shard's %d-table slice (wrong corpus?)", wr.Table, len(s.globals))
		}
	}
	s.lat.add(time.Since(start))
	return &p, nil
}

// PushArtifacts ships the global-artifact bootstrap to every replica of
// this shard (each daemon process needs its own copy), retrying each
// replica up to MaxAttempts with backoff. All replicas must acknowledge;
// the combined error reports the ones that did not.
func (s *Shard) PushArtifacts(ctx context.Context, a Artifacts) error {
	body, err := Seal(a)
	if err != nil {
		return fmt.Errorf("remote: seal artifacts: %w", err)
	}
	var errs []string
	for _, r := range s.replicas {
		if err := s.pushOne(ctx, r, body); err != nil {
			errs = append(errs, fmt.Sprintf("%s: %v", r.url, err))
		}
	}
	if len(errs) > 0 {
		return fmt.Errorf("remote: shard %s artifacts: %s", s.label, strings.Join(errs, "; "))
	}
	return nil
}

func (s *Shard) pushOne(ctx context.Context, r *replica, body []byte) error {
	var lastErr error
	for attempt := 1; attempt <= s.opt.MaxAttempts; attempt++ {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		actx, cancel := context.WithTimeout(ctx, s.opt.AttemptTimeout)
		lastErr = func() error {
			req, err := http.NewRequestWithContext(actx, http.MethodPost, r.url+"/shard/artifacts", bytes.NewReader(body))
			if err != nil {
				return err
			}
			req.Header.Set("Content-Type", "application/json")
			resp, err := r.client.Do(req)
			if err != nil {
				return err
			}
			defer resp.Body.Close()
			data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
			if resp.StatusCode != http.StatusOK {
				return fmt.Errorf("http %d: %s", resp.StatusCode, firstLine(data))
			}
			return nil
		}()
		cancel()
		if lastErr == nil {
			return nil
		}
		if attempt < s.opt.MaxAttempts {
			s.sleepBackoff(ctx, attempt)
		}
	}
	return lastErr
}

// ReplicaStatus is one replica's client-side health view, served on the
// coordinator's /readyz breakdown.
type ReplicaStatus struct {
	URL                 string `json:"url"`
	Breaker             string `json:"breaker"`
	ConsecutiveFailures int    `json:"consecutive_failures,omitempty"`
}

// Status is one shard's replica breakdown.
type Status struct {
	Shard    string          `json:"shard"`
	Tables   int             `json:"tables"`
	Replicas []ReplicaStatus `json:"replicas"`
}

// Status snapshots per-replica breaker state.
func (s *Shard) Status() Status {
	st := Status{Shard: s.label, Tables: len(s.globals)}
	for _, r := range s.replicas {
		state, fails := r.br.snapshot()
		st.Replicas = append(st.Replicas, ReplicaStatus{
			URL:                 r.url,
			Breaker:             state.String(),
			ConsecutiveFailures: fails,
		})
	}
	return st
}

// Healthy reports whether at least one replica's breaker currently admits
// traffic without transitioning state.
func (s *Shard) Healthy() bool {
	for _, r := range s.replicas {
		if state, _ := r.br.snapshot(); state == breakerClosed {
			return true
		}
	}
	return false
}

// ProbeOnce health-checks every replica whose breaker is not closed: a
// GET /readyz answering one of the statuses the endpoint actually emits
// (200 ready, 503 degraded-but-serving) counts as alive and feeds the
// breaker's half-open probe, so a parked replica rejoins without a user
// request paying for the experiment. Half-open replicas whose probe slot
// is free (a previous probe was abandoned) are probed too — the
// background prober is the safety net that un-wedges them.
func (s *Shard) ProbeOnce(ctx context.Context) {
	for _, r := range s.replicas {
		if state, _ := r.br.snapshot(); state == breakerClosed {
			continue
		}
		ok, _ := r.br.acquire()
		if !ok {
			continue // cooling down, or a probe is already in flight
		}
		pctx, cancel := context.WithTimeout(ctx, s.opt.AttemptTimeout)
		alive := probe(pctx, r)
		cancel()
		// Every acquired slot settles here: success or fail, never dropped,
		// even when ctx died mid-probe (alive is false then, re-opening the
		// breaker — the next ProbeOnce retries after the cooldown).
		if alive {
			r.br.success()
		} else {
			r.br.fail()
		}
	}
}

// probe reports whether r answers /readyz like a thetisd shard daemon.
// Only the statuses the endpoint emits count — 200 (ready) and 503
// (degraded ?full=1 form) — so a different service squatting on the port
// (404, 401, ...) does not close the breaker and re-admit a replica that
// cannot serve /shard/search.
func probe(ctx context.Context, r *replica) bool {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.url+"/readyz", nil)
	if err != nil {
		return false
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusServiceUnavailable
}

// StartProbes runs ProbeOnce every interval until the returned stop
// function is called.
func (s *Shard) StartProbes(interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = time.Second
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				s.ProbeOnce(ctx)
			}
		}
	}()
	return func() {
		cancel()
		<-done
	}
}

// firstLine truncates an error body for inclusion in an error message.
func firstLine(b []byte) string {
	s := strings.TrimSpace(string(b))
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		s = s[:i]
	}
	if len(s) > 200 {
		s = s[:200]
	}
	return s
}

// latencies is a fixed-size ring of successful-request durations backing
// the hedge percentile.
type latencies struct {
	mu  sync.Mutex
	buf [64]time.Duration
	n   int // total observed
}

// sampleMin is how many observations the percentile needs before it
// overrides the static hedge delay.
const sampleMin = 16

func (l *latencies) add(d time.Duration) {
	l.mu.Lock()
	l.buf[l.n%len(l.buf)] = d
	l.n++
	l.mu.Unlock()
}

func (l *latencies) percentile(p float64) (time.Duration, bool) {
	l.mu.Lock()
	size := l.n
	if size > len(l.buf) {
		size = len(l.buf)
	}
	if size < sampleMin {
		l.mu.Unlock()
		return 0, false
	}
	snap := make([]time.Duration, size)
	copy(snap, l.buf[:size])
	l.mu.Unlock()
	sort.Slice(snap, func(i, j int) bool { return snap[i] < snap[j] })
	idx := int(p * float64(size))
	if idx >= size {
		idx = size - 1
	}
	return snap[idx], true
}
