package thetis

import (
	"bytes"
	"strings"
	"testing"
)

// buildDemoSystem assembles the README's baseball scenario end-to-end
// through the public API only.
func buildDemoSystem(t *testing.T) (*System, Query) {
	t.Helper()
	g := NewGraph()
	triples := `
<onto/Athlete> <rdfs:subClassOf> <onto/Person> .
<onto/BaseballPlayer> <rdfs:subClassOf> <onto/Athlete> .
<onto/VolleyballPlayer> <rdfs:subClassOf> <onto/Athlete> .
<onto/BaseballTeam> <rdfs:subClassOf> <onto/Organisation> .
<res/Ron_Santo> <rdf:type> <onto/BaseballPlayer> .
<res/Ron_Santo> <rdfs:label> "Ron Santo" .
<res/Mitch_Stetter> <rdf:type> <onto/BaseballPlayer> .
<res/Mitch_Stetter> <rdfs:label> "Mitch Stetter" .
<res/Vera_Volley> <rdf:type> <onto/VolleyballPlayer> .
<res/Vera_Volley> <rdfs:label> "Vera Volley" .
<res/Chicago_Cubs> <rdf:type> <onto/BaseballTeam> .
<res/Chicago_Cubs> <rdfs:label> "Chicago Cubs" .
<res/Milwaukee_Brewers> <rdf:type> <onto/BaseballTeam> .
<res/Milwaukee_Brewers> <rdfs:label> "Milwaukee Brewers" .
<res/Ron_Santo> <onto/team> <res/Chicago_Cubs> .
<res/Mitch_Stetter> <onto/team> <res/Milwaukee_Brewers> .
`
	if err := LoadTriples(g, strings.NewReader(triples)); err != nil {
		t.Fatal(err)
	}
	sys := New(g)
	linker := NewDictionaryLinker(g)

	roster := NewTable("roster", []string{"Player", "Team"})
	roster.AppendValues("Ron Santo", "Chicago Cubs")
	roster.AppendValues("Mitch Stetter", "Milwaukee Brewers")
	LinkTable(roster, linker)
	sys.AddTable(roster)

	other := NewTable("transfers", []string{"Player"})
	other.AppendValues("Mitch Stetter")
	LinkTable(other, linker)
	sys.AddTable(other)

	volley := NewTable("volleyball", []string{"Player"})
	volley.AppendValues("Vera Volley")
	LinkTable(volley, linker)
	sys.AddTable(volley)

	q, err := sys.ParseQuery("Ron Santo | Chicago Cubs")
	if err != nil {
		t.Fatal(err)
	}
	return sys, q
}

func TestSystemTypeSearch(t *testing.T) {
	sys, q := buildDemoSystem(t)
	sys.UseTypeSimilarity()
	res := sys.Search(q, 10)
	if len(res) == 0 || res[0].Table != 0 {
		t.Fatalf("Search = %v, want roster table first", res)
	}
	if res[0].Score != 1 {
		t.Errorf("exact-match score = %v, want 1", res[0].Score)
	}
}

func TestSystemEmbeddingSearch(t *testing.T) {
	sys, q := buildDemoSystem(t)
	sys.TrainEmbeddings(
		WalkConfig{WalksPerEntity: 20, Length: 6, Undirected: true, Seed: 1},
		TrainConfig{Dim: 16, Window: 3, Negatives: 4, Epochs: 6, LearningRate: 0.05, Seed: 1})
	sys.UseEmbeddingSimilarity()
	res := sys.Search(q, 10)
	if len(res) == 0 || res[0].Table != 0 {
		t.Fatalf("embedding search = %v, want roster table first", res)
	}
}

func TestSystemIndexedSearchAgreesOnTop1(t *testing.T) {
	sys, q := buildDemoSystem(t)
	sys.UseTypeSimilarity()
	brute := sys.Search(q, 1)
	sys.BuildIndex(DefaultIndexConfig())
	indexed := sys.Search(q, 1)
	if len(indexed) == 0 || len(brute) == 0 || indexed[0].Table != brute[0].Table {
		t.Errorf("indexed top-1 %v != brute top-1 %v", indexed, brute)
	}
}

func TestSystemKeywordAndHybrid(t *testing.T) {
	sys, q := buildDemoSystem(t)
	sys.UseTypeSimilarity()
	sys.BuildKeywordIndex()
	kw := sys.KeywordSearch("Ron Santo", 5)
	if len(kw) == 0 || kw[0] != 0 {
		t.Fatalf("KeywordSearch = %v", kw)
	}
	hybrid := sys.HybridSearch(q, "Ron Santo Chicago Cubs", 3)
	if len(hybrid) == 0 || hybrid[0] != 0 {
		t.Fatalf("HybridSearch = %v", hybrid)
	}
}

func TestSystemStats(t *testing.T) {
	sys, _ := buildDemoSystem(t)
	st := sys.Stats()
	if st.Tables != 3 {
		t.Errorf("stats = %+v", st)
	}
	if sys.NumTables() != 3 {
		t.Errorf("NumTables = %d", sys.NumTables())
	}
	if sys.Table(0).Name != "roster" {
		t.Errorf("Table(0) = %q", sys.Table(0).Name)
	}
}

func TestSystemAggregationSwitch(t *testing.T) {
	sys, q := buildDemoSystem(t)
	sys.UseTypeSimilarity()
	sys.SetAggregation(AggregateAvg)
	res := sys.Search(q, 10)
	if len(res) == 0 {
		t.Fatal("no results with AVG aggregation")
	}
}

func TestSystemPanicsWithoutSimilarity(t *testing.T) {
	sys, q := buildDemoSystem(t)
	defer func() {
		if recover() == nil {
			t.Error("Search without a similarity did not panic")
		}
	}()
	sys.Search(q, 1)
}

func TestSystemPanicsWithoutEmbeddings(t *testing.T) {
	sys, _ := buildDemoSystem(t)
	defer func() {
		if recover() == nil {
			t.Error("UseEmbeddingSimilarity without embeddings did not panic")
		}
	}()
	sys.UseEmbeddingSimilarity()
}

func TestSystemParseQueryError(t *testing.T) {
	sys, _ := buildDemoSystem(t)
	if _, err := sys.ParseQuery("Totally Unknown Entity"); err == nil {
		t.Error("unresolvable query did not error")
	}
}

func TestFuzzyLinkerThroughFacade(t *testing.T) {
	sys, _ := buildDemoSystem(t)
	linker := NewFuzzyLinker(sys.Graph(), 0.5)
	tbl := NewTable("mentions", []string{"Who"})
	tbl.AppendValues("Santo Ron")
	if n := LinkTable(tbl, linker); n != 1 {
		t.Errorf("fuzzy LinkTable linked %d cells, want 1", n)
	}
}

func TestSystemPredicateSimilarity(t *testing.T) {
	sys, q := buildDemoSystem(t)
	sys.UsePredicateSimilarity()
	res := sys.Search(q, 10)
	if len(res) == 0 || res[0].Table != 0 {
		t.Fatalf("predicate search = %v, want roster table first", res)
	}
}

func TestSystemScoreModeAndMapping(t *testing.T) {
	sys, q := buildDemoSystem(t)
	sys.UseTypeSimilarity()
	sys.SetScoreMode(ModePairwise)
	sys.SetMapping(MappingGreedy)
	res := sys.Search(q, 10)
	if len(res) == 0 {
		t.Fatal("no results under pairwise/greedy configuration")
	}
}

func TestSystemEmbeddingPersistence(t *testing.T) {
	sys, q := buildDemoSystem(t)
	sys.TrainEmbeddings(
		WalkConfig{WalksPerEntity: 10, Length: 5, Undirected: true, Seed: 2},
		TrainConfig{Dim: 8, Window: 2, Negatives: 3, Epochs: 3, LearningRate: 0.05, Seed: 2})
	var buf bytes.Buffer
	if err := sys.SaveEmbeddings(&buf); err != nil {
		t.Fatal(err)
	}
	sys2, _ := buildDemoSystem(t)
	if err := sys2.LoadEmbeddings(&buf); err != nil {
		t.Fatal(err)
	}
	sys2.UseEmbeddingSimilarity()
	res := sys2.Search(q, 5)
	if len(res) == 0 {
		t.Fatal("no results with loaded embeddings")
	}
}

func TestSystemSaveEmbeddingsWithoutTraining(t *testing.T) {
	sys, _ := buildDemoSystem(t)
	var buf bytes.Buffer
	if err := sys.SaveEmbeddings(&buf); err == nil {
		t.Error("SaveEmbeddings without training did not error")
	}
}

func TestSystemLoadEmbeddingsBadData(t *testing.T) {
	sys, _ := buildDemoSystem(t)
	if err := sys.LoadEmbeddings(strings.NewReader("garbage")); err == nil {
		t.Error("LoadEmbeddings on garbage did not error")
	}
}

func TestSystemCombinedSimilarity(t *testing.T) {
	sys, q := buildDemoSystem(t)
	sys.TrainEmbeddings(
		WalkConfig{WalksPerEntity: 10, Length: 5, Undirected: true, Seed: 3},
		TrainConfig{Dim: 8, Window: 2, Negatives: 3, Epochs: 3, LearningRate: 0.05, Seed: 3})
	sys.UseCombinedSimilarity(0.6, 0.4)
	res := sys.Search(q, 10)
	if len(res) == 0 || res[0].Table != 0 {
		t.Fatalf("combined search = %v, want roster first", res)
	}
	// LSH prefiltering still works on top of the blend (type index).
	sys.BuildIndex(DefaultIndexConfig())
	res2 := sys.Search(q, 1)
	if len(res2) == 0 || res2[0].Table != 0 {
		t.Fatalf("indexed combined search = %v", res2)
	}
}

func TestSystemCombinedWithoutEmbeddingsPanics(t *testing.T) {
	sys, _ := buildDemoSystem(t)
	defer func() {
		if recover() == nil {
			t.Error("UseCombinedSimilarity without embeddings did not panic")
		}
	}()
	sys.UseCombinedSimilarity(0.5, 0.5)
}

func TestSystemRelaxedSearch(t *testing.T) {
	sys, _ := buildDemoSystem(t)
	sys.UseTypeSimilarity()
	q, err := sys.ParseQuery("Ron Santo | Chicago Cubs | Vera Volley")
	if err != nil {
		t.Fatal(err)
	}
	res, relaxed := sys.RelaxedSearch(q, 3, 1, 0.999)
	if len(res) == 0 || res[0].Score < 0.999 {
		t.Fatalf("relaxed search = %v", res)
	}
	if len(relaxed[0]) >= 3 {
		t.Errorf("query not relaxed: %v", relaxed)
	}
}

func TestIncrementalIngestion(t *testing.T) {
	sys, q := buildDemoSystem(t)
	sys.UseTypeSimilarity()
	sys.BuildIndex(DefaultIndexConfig())
	sys.BuildKeywordIndex()

	// A new table arrives after the indexes were built.
	g := sys.Graph()
	santo, _ := g.Lookup("res/Ron_Santo")
	cubs, _ := g.Lookup("res/Chicago_Cubs")
	late := NewTable("late_arrival", []string{"Player", "Team"})
	late.AppendRow([]Cell{LinkedCell("Ron Santo", santo), LinkedCell("Chicago Cubs", cubs)})
	id := sys.AddTable(late)

	// Semantic search (with LSH prefiltering) finds it.
	found := false
	for _, r := range sys.Search(q, 10) {
		if r.Table == id {
			found = true
			if r.Score != 1 {
				t.Errorf("late table score = %v, want 1", r.Score)
			}
		}
	}
	if !found {
		t.Error("incrementally added table not found by indexed semantic search")
	}
	// Keyword search finds it too.
	kwFound := false
	for _, kid := range sys.KeywordSearch("late_arrival", 10) {
		if kid == id {
			kwFound = true
		}
	}
	if !kwFound {
		t.Error("incrementally added table not found by keyword search")
	}
}

func TestIncrementalIngestionNewEntityNeedsRefresh(t *testing.T) {
	sys, _ := buildDemoSystem(t)
	sys.UseTypeSimilarity()
	sys.BuildIndex(DefaultIndexConfig())

	// A brand-new KG entity appears in a late table.
	g := sys.Graph()
	player, _ := g.LookupType("onto/BaseballPlayer")
	rookie := g.AddEntity("res/Rookie", "Rex Rookie")
	g.AssignType(rookie, player)
	late := NewTable("rookies", []string{"Player"})
	late.AppendRow([]Cell{LinkedCell("Rex Rookie", rookie)})
	id := sys.AddTable(late)

	// Before Refresh the rookie has no type profile: exact-match search
	// still works (σ(e,e)=1), related search may not. After Refresh the
	// rookie behaves like any baseball player.
	sys.Refresh()
	q := Query{Tuple{rookie}}
	res := sys.Search(q, 10)
	if len(res) == 0 || res[0].Table != id {
		t.Fatalf("post-refresh search = %v, want rookies table first", res)
	}
	// Related tables (other baseball players) are found too.
	foundRoster := false
	for _, r := range res {
		if sys.Table(r.Table).Name == "roster" {
			foundRoster = true
		}
	}
	if !foundRoster {
		t.Error("refresh did not give the new entity a type profile")
	}
}

func TestSystemIndexPersistence(t *testing.T) {
	sys, q := buildDemoSystem(t)
	sys.UseTypeSimilarity()
	sys.BuildIndex(DefaultIndexConfig())
	want := sys.Search(q, 3)

	var buf bytes.Buffer
	if err := sys.SaveIndex(&buf); err != nil {
		t.Fatal(err)
	}
	sys2, _ := buildDemoSystem(t)
	sys2.UseTypeSimilarity()
	if err := sys2.LoadIndex(&buf); err != nil {
		t.Fatal(err)
	}
	got := sys2.Search(q, 3)
	if len(got) != len(want) {
		t.Fatalf("results after index load: %v vs %v", got, want)
	}
	for i := range want {
		if got[i].Table != want[i].Table {
			t.Fatalf("ranking changed after index load: %v vs %v", got, want)
		}
	}
}

func TestSystemSaveIndexWithoutBuild(t *testing.T) {
	sys, _ := buildDemoSystem(t)
	var buf bytes.Buffer
	if err := sys.SaveIndex(&buf); err == nil {
		t.Error("SaveIndex without BuildIndex did not error")
	}
}

func TestSystemLoadIndexGarbage(t *testing.T) {
	sys, _ := buildDemoSystem(t)
	sys.UseTypeSimilarity()
	if err := sys.LoadIndex(strings.NewReader("junk")); err == nil {
		t.Error("garbage index accepted")
	}
}
