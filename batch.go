package thetis

import (
	"context"
	"time"

	"thetis/internal/core"
	"thetis/internal/obs"
)

// Throughput mode (docs/THROUGHPUT.md): the batch search API and the
// opt-in cross-query σ cache. SearchBatch scores N queries against one
// corpus snapshot with a batch-scoped σ cache, bit-identical to N
// sequential Search calls; EnableCrossCache persists σ pairs across
// searches under mutation-epoch invalidation.

// CrossCacheStats snapshots the cross-query σ cache (CrossCacheStats
// methods on System/ShardedSystem).
type CrossCacheStats = core.CrossCacheStats

// SearchBatch scores every query of the batch and returns per-query
// top-k rankings in query order. It is SearchBatchContext with a
// background context.
func (s *System) SearchBatch(queries []Query, k int) ([][]Result, []SearchStats) {
	return s.SearchBatchContext(context.Background(), queries, k)
}

// SearchBatchContext scores a batch of queries in one pass over the
// corpus under a single read lock: every query sees the same corpus
// epoch, each query keeps its own LSEI prefilter (with the usual
// full-scan fallback), and scoring shares a batch-scoped σ cache over the
// union of the queries' entities, so a σ pair touched by several queries
// is computed once per batch. Results and stats come back in query order
// and are bit-identical to issuing the queries sequentially through
// SearchStatsContext against an unchanged corpus.
//
// Cancellation truncates the whole batch at a table boundary: every
// query's results are a correctly ranked prefix and its stats are marked
// Truncated (the scoring pass is table-major, so the cutoff is a batch
// property, not a per-query one).
func (s *System) SearchBatchContext(ctx context.Context, queries []Query, k int) ([][]Result, []SearchStats) {
	s.mustEngine()
	s.mu.RLock()
	defer s.mu.RUnlock()
	start := time.Now()
	ix := s.index.Load()
	votes := int(s.votes.Load())
	var (
		cands [][]TableID
		pres  []*obs.Trace
	)
	if ix != nil {
		cands = make([][]TableID, len(queries))
		pres = make([]*obs.Trace, len(queries))
		for i, q := range queries {
			pre := obs.NewTrace("prefilter")
			c := ix.CandidatesTracedContext(ctx, q, votes, pre)
			if len(c) > 0 {
				cands[i] = c
			}
			// An empty candidate set keeps cands[i] nil: the batch engine
			// full-scans that query, mirroring FallbackFullScan.
			pres[i] = pre
		}
	}
	results, stats := s.engine.SearchBatchContext(ctx, queries, cands, k)
	if ix != nil {
		for i := range stats {
			if ctx.Err() != nil {
				// A prefilter cut short also truncates the search, matching
				// core.SearchWithIndex.
				stats[i].Truncated = true
			}
			stats[i].Trace.Prepend(pres[i].Stages...)
			stats[i].Trace.Total = time.Since(start)
		}
	}
	return results, stats
}

// SearchBatch scores every query of the batch across all shards and
// returns per-query top-k rankings in query order (see the System method;
// sharded batches share σ through a batch-scoped cache planted in the
// scatter context rather than a table-major pass).
func (ss *ShardedSystem) SearchBatch(queries []Query, k int) ([][]Result, []SearchStats) {
	return ss.SearchBatchContext(context.Background(), queries, k)
}

// SearchBatchContext runs the batch through the shard coordinator under
// one read lock. Every scatter leg of every query shares one batch-scoped
// σ cache covering the union of the batch's entities (core.WithBatchSigma),
// so cross-query σ reuse survives sharding; rankings are bit-identical to
// sequential SearchStatsContext calls against an unchanged corpus.
func (ss *ShardedSystem) SearchBatchContext(ctx context.Context, queries []Query, k int) ([][]Result, []SearchStats) {
	ss.mustEngines()
	ss.mu.RLock()
	defer ss.mu.RUnlock()
	mBatchSearches.Inc()
	mBatchQueries.Observe(float64(len(queries)))
	if eng := ss.shards[0].Engine(); eng != nil && ss.graph != nil {
		ctx = core.WithBatchSigma(ctx, core.NewBatchSigma(queries, eng.Sim, ss.graph.NumEntities()))
	}
	results := make([][]Result, len(queries))
	stats := make([]SearchStats, len(queries))
	for i, q := range queries {
		results[i], stats[i] = ss.coord.Search(ctx, q, k)
	}
	return results, stats
}

// SearchBatchContext answers a batch against remote shards, query by
// query in order — remote legs run in other processes, so there is no
// local σ cache to share; each daemon applies its own caching. Present so
// the -shard-urls coordinator serves POST /search/batch.
func (rs *RemoteSharded) SearchBatchContext(ctx context.Context, queries []Query, k int) ([][]Result, []SearchStats) {
	mBatchSearches.Inc()
	mBatchQueries.Observe(float64(len(queries)))
	results := make([][]Result, len(queries))
	stats := make([]SearchStats, len(queries))
	for i, q := range queries {
		results[i], stats[i] = rs.SearchStatsContext(ctx, q, k)
	}
	return results, stats
}

var (
	mBatchSearches = obs.SearchBatchTotal()
	mBatchQueries  = obs.SearchBatchQueries()
)

// EnableCrossCache attaches a cross-query σ cache of roughly maxBytes to
// the system (docs/THROUGHPUT.md). Call it at setup time, after selecting
// a similarity; later similarity changes and Refresh reattach (and flush)
// it automatically, and every mutation advances its epoch so stale
// entries lazily invalidate. Pass the previous cache's bytes again to
// resize by re-enabling. Results are bit-identical with or without it.
func (s *System) EnableCrossCache(maxBytes int64) {
	s.mustEngine()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cross = core.NewCrossCache(maxBytes)
	s.cross.SetEpoch(s.lake.Epoch())
	s.engine.Cross = s.cross
}

// DisableCrossCache detaches the cross-query σ cache — the runtime escape
// hatch mirroring DisableSigmaCache's role for the query-scoped cache.
func (s *System) DisableCrossCache() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cross = nil
	if s.engine != nil {
		s.engine.Cross = nil
	}
}

// CrossCacheStats snapshots the cross-query σ cache; ok is false when the
// cache is not enabled.
func (s *System) CrossCacheStats() (CrossCacheStats, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.cross == nil {
		return CrossCacheStats{}, false
	}
	return s.cross.Stats(), true
}

// attachCross re-attaches the enabled cross cache to a freshly built
// engine (similarity selection, Refresh). The σ function may have
// changed, so the cache is flushed — its epoch alone cannot express
// "same epoch, different σ".
func (s *System) attachCross() {
	if s.cross == nil {
		return
	}
	s.cross.Flush()
	s.cross.SetEpoch(s.lake.Epoch())
	s.engine.Cross = s.cross
}

// EnableCrossCache attaches one deployment-wide cross-query σ cache of
// roughly maxBytes, shared by every shard's engine (σ is a global
// entity-pair property, so shards can share entries). See the System
// method for lifecycle semantics.
func (ss *ShardedSystem) EnableCrossCache(maxBytes int64) {
	ss.mustEngines()
	ss.mu.Lock()
	defer ss.mu.Unlock()
	ss.cross = core.NewCrossCache(maxBytes)
	ss.cross.SetEpoch(ss.epoch.Load())
	for _, sh := range ss.shards {
		if eng := sh.Engine(); eng != nil {
			eng.Cross = ss.cross
		}
	}
}

// DisableCrossCache detaches the cross-query σ cache from every shard.
func (ss *ShardedSystem) DisableCrossCache() {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	ss.cross = nil
	for _, sh := range ss.shards {
		if eng := sh.Engine(); eng != nil {
			eng.Cross = nil
		}
	}
}

// CrossCacheStats snapshots the deployment-wide cross-query σ cache; ok
// is false when the cache is not enabled.
func (ss *ShardedSystem) CrossCacheStats() (CrossCacheStats, bool) {
	ss.mu.RLock()
	defer ss.mu.RUnlock()
	if ss.cross == nil {
		return CrossCacheStats{}, false
	}
	return ss.cross.Stats(), true
}

// attachCross mirrors System.attachCross for installEngines.
func (ss *ShardedSystem) attachCross() {
	if ss.cross == nil {
		return
	}
	ss.cross.Flush()
	ss.cross.SetEpoch(ss.epoch.Load())
	for _, sh := range ss.shards {
		if eng := sh.Engine(); eng != nil {
			eng.Cross = ss.cross
		}
	}
}
