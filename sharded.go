package thetis

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"strconv"
	"sync"
	"sync/atomic"

	"thetis/internal/bm25"
	"thetis/internal/core"
	"thetis/internal/embedding"
	"thetis/internal/kg"
	"thetis/internal/lake"
	"thetis/internal/obs"
	"thetis/internal/shard"
	"thetis/internal/table"
)

// Sharded scatter-gather serving (docs/SHARDING.md). These are the public
// seams of internal/shard: the Shard interface a scatter leg runs against,
// the Coordinator that fans out and merges, the Partitioner strategies
// that place tables, and ShardedSystem — the multi-shard counterpart of
// System behind the same serving surface (thetisd -shards).
type (
	// Shard is one partition of a scatter-gather deployment: anything that
	// can answer a query with a ranked slice of GLOBAL table IDs. See
	// internal/shard.Searcher for the exact ranking/stats contract.
	Shard = shard.Searcher
	// ShardSearchOptions modulates one scatter leg (ForceFullScan).
	ShardSearchOptions = shard.SearchOptions
	// Coordinator scatters queries across Shards and merges the per-shard
	// rankings deterministically.
	Coordinator = shard.Coordinator
	// Partitioner assigns tables to shards at ingestion time.
	Partitioner = lake.Partitioner
)

// NewCoordinator builds a scatter-gather coordinator over the given
// shards. The shards must own disjoint global table ID ranges and return
// engine-ordered rankings (descending score, ascending table ID on ties);
// the merged result is then independent of shard order and arrival order.
func NewCoordinator(shards ...Shard) *Coordinator { return shard.NewCoordinator(shards...) }

// NewHashPartitioner partitions tables by a hash of their name — the
// stateless, ingestion-order-independent default (thetisd -shard-by hash).
func NewHashPartitioner(n int) Partitioner { return lake.NewHashPartitioner(n) }

// NewBalancedPartitioner partitions tables onto the least-loaded shard by
// cell count — evens scoring work under skewed table sizes at the cost of
// order-dependent placement (thetisd -shard-by size).
func NewBalancedPartitioner(n int) Partitioner { return lake.NewBalancedPartitioner(n) }

// SearchShard implements Shard, making a System usable as one scatter leg
// of a Coordinator — the shape a shard-over-HTTP deployment takes, where
// each remote daemon hosts one System (docs/SHARDING.md). The returned
// table IDs are the System's own, so the deployment must give each such
// System a disjoint ID range (or translate in the proxy). Unlike
// SearchStatsContext, an empty prefilter does not fall back to a full
// scan: the coordinator decides that globally and rescatters with
// opts.ForceFullScan.
func (s *System) SearchShard(ctx context.Context, q Query, k int, opts ShardSearchOptions) ([]Result, SearchStats) {
	s.mustEngine()
	s.mu.RLock()
	defer s.mu.RUnlock()
	ix := s.index.Load()
	if opts.ForceFullScan {
		ix = nil
	}
	return core.SearchWithIndex(ctx, s.engine, ix, int(s.votes.Load()), q, k, core.FallbackNone)
}

// SetParallelism bounds the scoring worker count per search (0 = one
// worker per CPU). In sharded deployments the same budget fans out once
// per shard; see docs/SHARDING.md for how to split it.
func (s *System) SetParallelism(p int) {
	s.mustEngine()
	s.engine.Parallelism = p
}

// shardLoc locates a global table ID: which shard owns it, under which
// shard-local ID. A removed table keeps its slot with shard == -1 — global
// IDs, like lake slots, are never reused.
type shardLoc struct {
	shard int
	local lake.TableID
}

// ShardedSystem is a semantic data lake partitioned into N in-process
// shards, searched by scatter-gather. It mirrors System's serving surface
// (ingest, similarity selection, index building, search, keyword/hybrid
// search), so thetisd and the HTTP layer treat the two interchangeably;
// the differential test battery proves a ShardedSystem ranks bit-for-bit
// like an unsharded System over the same corpus, regardless of shard
// count, partitioning strategy, aggregation, score mode, or parallelism.
//
// What stays global: table IDs (assigned in ingestion order, so they match
// the unsharded System's), IDF informativeness weights, the LSEI
// frequent-type filter, the BM25 keyword index, and the full-scan
// fallback decision. What each shard owns: its slice of the tables, its
// LSEI and LSH buckets, its column-index memos, and its query-scoped σ
// caches. Similarity selection and embedding training remain setup-time,
// but like System, mutations (AddTable/AddTableJSON/RemoveTable) may run
// concurrently with searches: the locking is system-wide, not per-shard,
// because scoring on one shard reads global structures (IDF weights over
// every lake, the shared frequent-type filter, the global keyword index).
type ShardedSystem struct {
	graph *Graph
	part  Partitioner

	shards []*shard.Local
	lakes  []*lake.Lake
	owner  []shardLoc
	live   int // owner slots not tombstoned
	coord  *Coordinator

	tj    *core.TypeJaccard
	ec    *core.EmbeddingCosine
	store *embedding.Store

	indexCfg   IndexConfig
	typeFilter map[kg.TypeID]bool
	votes      int

	keyword *bm25.Index

	// mu/maintMu mirror System's serving and maintenance locks
	// (docs/LIVE_INDEX.md); epoch mirrors lake.Epoch for the whole
	// deployment, bumped once per mutation.
	mu          sync.RWMutex
	maintMu     sync.Mutex
	filterState *core.TypeFilterState
	epoch       atomic.Uint64

	// ann mirrors System's top-k σ state: one shared graph for the whole
	// deployment (the embedding store is a graph property, identical on
	// every shard). See ann.go / docs/ANN.md.
	ann            atomic.Pointer[annState]
	annBuilding    atomic.Bool
	annTopK, annEf int

	// cross, when enabled, is the deployment-wide cross-query σ cache,
	// shared by every shard's engine — σ is a global (entity, entity)
	// property, so one cache serves all shards (EnableCrossCache,
	// docs/THROUGHPUT.md).
	cross *core.CrossCache
}

// NewShardedSystem creates an empty sharded lake over graph g, placing
// tables with part (e.g. NewHashPartitioner(4)).
func NewShardedSystem(g *Graph, part Partitioner) *ShardedSystem {
	if part == nil || part.Shards() < 1 {
		panic("thetis: NewShardedSystem needs a partitioner with at least 1 shard")
	}
	n := part.Shards()
	ss := &ShardedSystem{graph: g, part: part, votes: 1}
	ss.shards = make([]*shard.Local, n)
	ss.lakes = make([]*lake.Lake, n)
	searchers := make([]Shard, n)
	for i := 0; i < n; i++ {
		ss.shards[i] = shard.NewLocal(i, g)
		ss.lakes[i] = ss.shards[i].Lake()
		searchers[i] = ss.shards[i]
	}
	ss.coord = NewCoordinator(searchers...)
	return ss
}

// Graph returns the underlying knowledge graph.
func (ss *ShardedSystem) Graph() *Graph { return ss.graph }

// NumShards returns the shard count.
func (ss *ShardedSystem) NumShards() int { return len(ss.shards) }

// ShardNumTables returns how many live tables shard i owns (partitioning
// balance; also exported per shard on thetis_shard_tables).
func (ss *ShardedSystem) ShardNumTables(i int) int {
	ss.mu.RLock()
	defer ss.mu.RUnlock()
	return ss.shards[i].NumTables()
}

// NumTables returns the total number of live tables across shards.
func (ss *ShardedSystem) NumTables() int {
	ss.mu.RLock()
	defer ss.mu.RUnlock()
	return ss.live
}

// Table returns an ingested table by its global ID, or nil when the ID was
// never assigned or the table has been removed.
func (ss *ShardedSystem) Table(id TableID) *Table {
	ss.mu.RLock()
	defer ss.mu.RUnlock()
	return ss.tableLocked(id)
}

func (ss *ShardedSystem) tableLocked(id TableID) *Table {
	if id < 0 || int(id) >= len(ss.owner) {
		return nil
	}
	loc := ss.owner[int(id)]
	if loc.shard < 0 {
		return nil
	}
	return ss.shards[loc.shard].Lake().Table(loc.local)
}

// AddTable ingests a table: the partitioner picks its shard, and the
// returned global ID is assigned in ingestion order — the same ID an
// unsharded System would assign. Like System.AddTable, live per-shard
// LSEIs, the shared frequent-type filter, and the keyword index are
// extended incrementally; the result ranks bit-identically to rebuilding
// the deployment from scratch. May run concurrently with searches.
func (ss *ShardedSystem) AddTable(t *Table) TableID {
	ss.maintMu.Lock()
	defer ss.maintMu.Unlock()
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return ss.addTableLocked(t)
}

func (ss *ShardedSystem) addTableLocked(t *Table) TableID {
	si := ss.part.Assign(t)
	if si < 0 || si >= len(ss.shards) {
		panic(fmt.Sprintf("thetis: partitioner assigned shard %d outside [0, %d)", si, len(ss.shards)))
	}
	if ss.filterState != nil {
		// Re-balance the shared filter before the table joins, so its own
		// signatures are computed under the filter that includes it.
		ss.filterState.AddTable(t, ss.liveIndexes()...)
	}
	global := TableID(len(ss.owner))
	local := ss.shards[si].Add(t, global)
	ss.owner = append(ss.owner, shardLoc{shard: si, local: local})
	ss.live++
	if ss.keyword != nil {
		ss.keyword.Add(int32(global), bm25.TableText(t))
		ss.keyword.Finish()
	}
	mDeltaAdds.Inc()
	ss.noteEpochLocked()
	return global
}

// AddTableJSON ingests one table in the annotated JSON interchange format
// (the body of the daemon's POST /tables), interning any entity URIs into
// the graph, and returns its global ID.
func (ss *ShardedSystem) AddTableJSON(data []byte) (TableID, error) {
	ss.maintMu.Lock()
	defer ss.maintMu.Unlock()
	ss.mu.Lock()
	defer ss.mu.Unlock()
	t, err := table.ReadJSON(ss.graph, bytes.NewReader(data))
	if err != nil {
		return 0, err
	}
	return ss.addTableLocked(t), nil
}

// RemoveTable removes a table by its global ID from its owning shard's
// lake and LSEI, re-balances the shared frequent-type filter across every
// shard's index, and drops its keyword postings. The global ID is
// tombstoned, never reused. May run concurrently with searches.
func (ss *ShardedSystem) RemoveTable(id TableID) error {
	ss.maintMu.Lock()
	defer ss.maintMu.Unlock()
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.tableLocked(id) == nil {
		return ErrNoSuchTable
	}
	loc := ss.owner[int(id)]
	// The owning shard's LSEI sheds the table's signatures under the OLD
	// filter (signatures must match to be found); the filter re-balances
	// after.
	t := ss.shards[loc.shard].Remove(loc.local)
	if ss.filterState != nil {
		ss.filterState.RemoveTable(t, ss.liveIndexes()...)
	}
	if ss.keyword != nil {
		ss.keyword.Remove(int32(id))
		ss.keyword.Finish()
	}
	ss.owner[int(id)] = shardLoc{shard: -1}
	ss.live--
	mDeltaRemoves.Inc()
	ss.noteEpochLocked()
	return nil
}

// liveIndexes collects every shard's active LSEI (shards still building
// serve brute-force and have none; their eventual build uses the filter's
// then-current state).
func (ss *ShardedSystem) liveIndexes() []*core.LSEI {
	var out []*core.LSEI
	for _, sh := range ss.shards {
		if ix := sh.Index(); ix != nil {
			out = append(out, ix)
		}
	}
	return out
}

// IndexEpoch returns the deployment's mutation epoch, bumped once per
// AddTable/RemoveTable (compaction does not bump it).
func (ss *ShardedSystem) IndexEpoch() uint64 { return ss.epoch.Load() }

func (ss *ShardedSystem) noteEpochLocked() {
	ss.epoch.Add(1)
	mIndexEpoch.Set(float64(ss.epoch.Load()))
	mTombstones.Set(float64(len(ss.owner) - ss.live))
	if ss.cross != nil {
		// Lazily invalidate the cross-query σ cache (docs/THROUGHPUT.md).
		ss.cross.SetEpoch(ss.epoch.Load())
	}
}

// Compact rebuilds every shard's LSEI (and the shared frequent-type filter
// state) from the live corpus, shedding tombstoned slots and emptied
// buckets. Shards hot-swap one by one; searches keep flowing. A no-op
// until an index has been prepared.
func (ss *ShardedSystem) Compact() {
	ss.maintMu.Lock()
	defer ss.maintMu.Unlock()
	if !ss.hasAnyIndexLocked() {
		return
	}
	ss.prepareIndexLocked(ss.indexCfg)
	for i := range ss.shards {
		ss.buildShardIndexLocked(i)
	}
	mCompactions.Inc()
}

func (ss *ShardedSystem) hasAnyIndexLocked() bool {
	for _, sh := range ss.shards {
		if sh.Index() != nil {
			return true
		}
	}
	return false
}

// GraphCounts returns the KG's size counters at one corpus epoch
// (System.GraphCounts).
func (ss *ShardedSystem) GraphCounts() GraphCounts {
	ss.mu.RLock()
	defer ss.mu.RUnlock()
	return GraphCounts{
		Entities:   ss.graph.NumEntities(),
		Types:      ss.graph.NumTypes(),
		Predicates: ss.graph.NumPredicates(),
		Edges:      ss.graph.NumEdges(),
	}
}

// IngestCorpus streams a JSONL corpus into the sharded lake, exactly like
// System.IngestCorpus but routing each table through the partitioner.
func (ss *ShardedSystem) IngestCorpus(r io.Reader, opts IngestOptions) (int, error) {
	var q *obs.Quarantine
	if opts.Report != nil {
		q = opts.Report.Tables
	}
	jr := newCorpusReader(ss.graph, r, opts, q)
	n := 0
	for {
		t, err := jr.Next()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		ss.AddTable(t)
		q.Accept()
		n++
	}
}

// TrainEmbeddings trains skip-gram entity embeddings over the KG, shared
// by every shard (embeddings are a graph property, not a corpus one).
func (ss *ShardedSystem) TrainEmbeddings(w WalkConfig, t TrainConfig) *EmbeddingStore {
	ss.store = embedding.TrainGraph(ss.graph, w, t)
	return ss.store
}

// SetEmbeddings installs externally trained embeddings.
func (ss *ShardedSystem) SetEmbeddings(store *EmbeddingStore) { ss.store = store }

// SaveEmbeddings serializes the trained embeddings (binary format).
func (ss *ShardedSystem) SaveEmbeddings(w io.Writer) error {
	if ss.store == nil {
		return errNoEmbeddings
	}
	return ss.store.Write(w)
}

// LoadEmbeddings installs embeddings previously written by SaveEmbeddings.
func (ss *ShardedSystem) LoadEmbeddings(r io.Reader) error {
	store, err := embedding.ReadStore(r)
	if err != nil {
		return err
	}
	ss.store = store
	return nil
}

// installEngines gives every shard a fresh engine over the chosen
// similarity with GLOBAL informativeness weights — the first of the three
// globals that keep sharded rankings identical to unsharded ones.
func (ss *ShardedSystem) installEngines(sim Similarity) {
	inf := core.IDFInformativenessOver(ss.lakes)
	for _, sh := range ss.shards {
		eng := core.NewEngine(sh.Lake(), sim)
		eng.Inf = inf
		sh.SetEngine(eng)
	}
	ss.typeFilter = nil
	ss.filterState = nil
	ss.attachCross()
}

// UseTypeSimilarity configures σ as the adjusted Jaccard of taxonomy-
// expanded entity type sets on every shard (System.UseTypeSimilarity).
func (ss *ShardedSystem) UseTypeSimilarity() {
	if ss.tj == nil {
		ss.tj = core.NewTypeJaccard(ss.graph)
	}
	ss.installEngines(ss.tj)
}

// UseEmbeddingSimilarity configures σ as the clamped cosine of entity
// embeddings on every shard (System.UseEmbeddingSimilarity).
func (ss *ShardedSystem) UseEmbeddingSimilarity() {
	if ss.store == nil {
		panic("thetis: UseEmbeddingSimilarity before TrainEmbeddings/SetEmbeddings")
	}
	ss.ec = core.NewEmbeddingCosine(ss.graph, ss.store)
	ss.installEngines(ss.ec)
}

// UseCombinedSimilarity configures σ as a weighted blend of the type and
// embedding similarities on every shard (System.UseCombinedSimilarity).
func (ss *ShardedSystem) UseCombinedSimilarity(typeWeight, embeddingWeight float64) {
	if ss.store == nil {
		panic("thetis: UseCombinedSimilarity before TrainEmbeddings/SetEmbeddings")
	}
	if ss.tj == nil {
		ss.tj = core.NewTypeJaccard(ss.graph)
	}
	ss.ec = core.NewEmbeddingCosine(ss.graph, ss.store)
	ss.installEngines(core.NewCombinedSimilarity(
		[]core.Similarity{ss.tj, ss.ec},
		[]float64{typeWeight, embeddingWeight}))
}

// UsePredicateSimilarity configures σ as the Jaccard of directional
// predicate sets on every shard (System.UsePredicateSimilarity). LSH
// prefiltering is not available for this similarity.
func (ss *ShardedSystem) UsePredicateSimilarity() {
	ss.installEngines(core.NewPredicateJaccard(ss.graph))
}

// SetAggregation switches MAX/AVG row-score aggregation on every shard.
func (ss *ShardedSystem) SetAggregation(a Aggregation) {
	ss.mustEngines()
	for _, sh := range ss.shards {
		sh.Engine().Agg = a
	}
}

// SetScoreMode switches entity-wise/pairwise SemRel on every shard.
func (ss *ShardedSystem) SetScoreMode(m ScoreMode) {
	ss.mustEngines()
	for _, sh := range ss.shards {
		sh.Engine().Mode = m
	}
}

// SetMapping switches the query-to-column assignment on every shard.
func (ss *ShardedSystem) SetMapping(m MappingMethod) {
	ss.mustEngines()
	for _, sh := range ss.shards {
		sh.Engine().Mapping = m
	}
}

// SetParallelism bounds the scoring worker count per shard per search
// (0 = one worker per CPU, in every shard at once — fine for throughput,
// see docs/SHARDING.md for latency tuning).
func (ss *ShardedSystem) SetParallelism(p int) {
	ss.mustEngines()
	for _, sh := range ss.shards {
		sh.Engine().Parallelism = p
	}
}

// embeddingSim reports whether the active similarity is the plain
// embedding cosine (which indexes via hyperplane LSH instead of MinHash),
// mirroring System.BuildIndex's dispatch.
func (ss *ShardedSystem) embeddingSim() bool {
	return ss.ec != nil && ss.shards[0].Engine().Sim == Similarity(ss.ec)
}

// PrepareIndex fixes the index configuration and computes the GLOBAL
// frequent-type filter every shard's LSEI will share — the second global
// that keeps sharded prefiltering identical to unsharded: LSH signatures
// depend only on entity type sets, the filter, and the seed, so with one
// global filter a shard's candidate set is exactly the global candidate
// set intersected with the shard. Call it once, then BuildShardIndex per
// shard (BuildIndex does both).
func (ss *ShardedSystem) PrepareIndex(cfg IndexConfig) {
	ss.mustEngines()
	ss.maintMu.Lock()
	defer ss.maintMu.Unlock()
	ss.prepareIndexLocked(cfg)
}

func (ss *ShardedSystem) prepareIndexLocked(cfg IndexConfig) {
	if cfg.FrequentTypeThreshold == 0 {
		cfg.FrequentTypeThreshold = 0.5
	}
	ss.indexCfg = cfg
	if ss.embeddingSim() {
		ss.typeFilter = nil
		ss.filterState = nil
	} else {
		// The filter state both computes the global filter (equal to
		// FrequentTypesOver) and keeps it — and every shard's signatures —
		// current under later mutations.
		fs := core.NewTypeFilterState(ss.lakes, ss.tj, cfg.FrequentTypeThreshold)
		ss.typeFilter = fs.Filter()
		ss.filterState = fs
	}
}

// BuildShardIndex builds and hot-swaps shard i's LSEI using the
// configuration and global filter fixed by PrepareIndex. Safe to run
// concurrently with searches (the shard serves brute force until the
// swap); builds serialize with mutations and each other on the
// maintenance lock — the mechanism behind per-shard degraded-mode serving
// (server.ActivateShardIndexes).
func (ss *ShardedSystem) BuildShardIndex(i int) {
	ss.maintMu.Lock()
	defer ss.maintMu.Unlock()
	ss.buildShardIndexLocked(i)
}

func (ss *ShardedSystem) buildShardIndexLocked(i int) {
	sh := ss.shards[i]
	var ix *core.LSEI
	if ss.embeddingSim() {
		ix = core.BuildEmbeddingLSEI(sh.Lake(), ss.ec, ss.store.Dim(), ss.indexCfg)
	} else {
		ix = core.BuildTypeLSEIFiltered(sh.Lake(), ss.tj, ss.indexCfg, ss.typeFilter)
	}
	sh.SetIndex(ix)
	obs.ShardIndexItems(nil, strconv.Itoa(i)).Set(float64(ix.NumItems()))
}

// BuildIndex builds every shard's LSEI synchronously (PrepareIndex +
// BuildShardIndex for each shard). The daemon instead activates shards in
// the background so they hot-swap independently.
func (ss *ShardedSystem) BuildIndex(cfg IndexConfig) {
	ss.mustEngines()
	ss.maintMu.Lock()
	defer ss.maintMu.Unlock()
	ss.prepareIndexLocked(cfg)
	for i := range ss.shards {
		ss.buildShardIndexLocked(i)
	}
}

// HasIndex reports whether every shard has an active LSEI.
func (ss *ShardedSystem) HasIndex() bool {
	for _, sh := range ss.shards {
		if sh.Index() == nil {
			return false
		}
	}
	return true
}

// SetVotes sets the LSEI vote threshold on every shard. Votes threshold
// per-entity collision counts within one shard, and a table's collisions
// all come from its own shard, so the per-shard tally equals the global
// one and the threshold needs no rescaling.
func (ss *ShardedSystem) SetVotes(v int) {
	ss.votes = v
	for _, sh := range ss.shards {
		sh.SetVotes(v)
	}
}

// Search ranks tables across all shards by scatter-gather and returns the
// global top-k (k < 0 returns all relevant tables).
func (ss *ShardedSystem) Search(q Query, k int) []Result {
	res, _ := ss.SearchStats(q, k)
	return res
}

// SearchContext is Search honoring cancellation and deadlines; every
// scatter leg shares ctx, so a deadline truncates all shards and the
// merged result is the correctly ranked prefix of what completed.
func (ss *ShardedSystem) SearchContext(ctx context.Context, q Query, k int) []Result {
	res, _ := ss.SearchStatsContext(ctx, q, k)
	return res
}

// SearchStats is Search returning aggregated statistics: per-shard
// counters sum, Truncated ORs across shards, and the Trace carries every
// shard's stages labeled with its shard plus the coordinator's merge
// stage.
func (ss *ShardedSystem) SearchStats(q Query, k int) ([]Result, SearchStats) {
	return ss.SearchStatsContext(context.Background(), q, k)
}

// SearchStatsContext is SearchStats honoring cancellation and deadlines.
func (ss *ShardedSystem) SearchStatsContext(ctx context.Context, q Query, k int) ([]Result, SearchStats) {
	ss.mustEngines()
	ss.mu.RLock()
	defer ss.mu.RUnlock()
	return ss.coord.Search(ctx, q, k)
}

// ParseQuery resolves a textual query into entity tuples (System.ParseQuery).
func (ss *ShardedSystem) ParseQuery(text string) (Query, error) {
	ss.mu.RLock()
	defer ss.mu.RUnlock()
	return core.ParseQuery(ss.graph, text)
}

// BuildKeywordIndex builds the BM25 index used by KeywordSearch and
// HybridSearch. The keyword index is global — BM25's IDF depends on
// corpus-wide document frequencies, so sharding it would change scores.
// Later AddTable/RemoveTable calls keep it current.
func (ss *ShardedSystem) BuildKeywordIndex() {
	ss.maintMu.Lock()
	defer ss.maintMu.Unlock()
	kw := bm25.NewIndex()
	for gid, loc := range ss.owner {
		if loc.shard < 0 {
			continue
		}
		kw.Add(int32(gid), bm25.TableText(ss.shards[loc.shard].Lake().Table(loc.local)))
	}
	kw.Finish()
	ss.mu.Lock()
	ss.keyword = kw
	ss.mu.Unlock()
}

// KeywordSearch runs BM25 keyword search over table text and returns the
// top-k global table IDs.
func (ss *ShardedSystem) KeywordSearch(text string, k int) []TableID {
	ss.mustKeyword()
	ss.mu.RLock()
	defer ss.mu.RUnlock()
	return ss.keywordSearchLocked(text, k)
}

func (ss *ShardedSystem) keywordSearchLocked(text string, k int) []TableID {
	hits := ss.keyword.Search(text, k)
	out := make([]TableID, len(hits))
	for i, h := range hits {
		out[i] = TableID(h.Doc)
	}
	return out
}

// HybridSearch complements BM25 keyword search with sharded semantic
// search (System.HybridSearch).
func (ss *ShardedSystem) HybridSearch(q Query, keywords string, k int) []TableID {
	return ss.HybridSearchContext(context.Background(), q, keywords, k)
}

// HybridSearchContext is HybridSearch honoring cancellation on its
// semantic half.
func (ss *ShardedSystem) HybridSearchContext(ctx context.Context, q Query, keywords string, k int) []TableID {
	ss.mustEngines()
	ss.mustKeyword()
	// One read lock across both halves (see System.HybridSearchContext).
	ss.mu.RLock()
	defer ss.mu.RUnlock()
	sem, _ := ss.coord.Search(ctx, q, k)
	semIDs := make([]int, len(sem))
	for i, r := range sem {
		semIDs[i] = int(r.Table)
	}
	bmIDs := ss.keywordSearchLocked(keywords, k)
	bmInts := make([]int, len(bmIDs))
	for i, id := range bmIDs {
		bmInts[i] = int(id)
	}
	merged := core.Complement(semIDs, bmInts, k)
	out := make([]TableID, len(merged))
	for i, id := range merged {
		out[i] = TableID(id)
	}
	return out
}

// Stats aggregates corpus statistics across shards, weighting per-shard
// means by table count and unioning distinct entities (an entity mentioned
// on two shards counts once, like in one lake).
func (ss *ShardedSystem) Stats() lake.Stats {
	ss.mu.RLock()
	defer ss.mu.RUnlock()
	agg := lake.Stats{}
	distinct := make(map[kg.EntityID]struct{})
	var rows, cols, cov float64
	for _, l := range ss.lakes {
		st := l.ComputeStats()
		agg.Tables += st.Tables
		n := float64(st.Tables)
		rows += st.MeanRows * n
		cols += st.MeanColumns * n
		cov += st.MeanCoverage * n
		for _, e := range l.DistinctEntities() {
			distinct[e] = struct{}{}
		}
	}
	agg.DistinctEntities = len(distinct)
	if agg.Tables > 0 {
		n := float64(agg.Tables)
		agg.MeanRows = rows / n
		agg.MeanColumns = cols / n
		agg.MeanCoverage = cov / n
	}
	return agg
}

func (ss *ShardedSystem) mustEngines() {
	if ss.shards[0].Engine() == nil {
		panic("thetis: select a similarity first (UseTypeSimilarity or UseEmbeddingSimilarity)")
	}
}

func (ss *ShardedSystem) mustKeyword() {
	if ss.keyword == nil {
		panic("thetis: BuildKeywordIndex before keyword/hybrid search")
	}
}
