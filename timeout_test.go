package thetis_test

// Deadline behavior against the full synthetic benchmark corpus: a search
// whose context expires must return promptly with a correctly ranked,
// Truncated-marked prefix — the graceful-degradation contract of
// core.Engine.SearchContext.

import (
	"context"
	"testing"
	"time"

	"thetis/internal/core"
	"thetis/internal/lake"
)

func TestSearchContextDeadlineOnFullCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the full synthetic benchmark environment")
	}
	env := benchEnvironment(t)
	eng := core.NewEngine(env.Lake, env.TJ)
	q := env.Queries5[0].Query

	// The lake memoizes per-table column indexes on first use
	// (docs/PERFORMANCE.md §4), so a cold search is slower than every
	// search after it. Warm the corpus first: the deadline below is scaled
	// from the calibration search's TotalTime and must reflect the
	// steady-state speed of the timed search, not one-time build cost.
	eng.Search(q, -1)

	// Serial reference over the full corpus for score verification, and
	// proof that an unbounded search takes real time on this corpus.
	full, fullStats := eng.Search(q, -1)
	if len(full) == 0 {
		t.Fatal("reference search returned nothing")
	}
	ref := make(map[lake.TableID]float64, len(full))
	for _, r := range full {
		ref[r.Table] = r.Score
	}

	// A deadline well under the full search time must truncate. Searches
	// faster than 10ms end-to-end make the deadline meaningless; scale it
	// down so the cutoff still lands mid-search.
	deadline := 10 * time.Millisecond
	if fullStats.TotalTime < 10*deadline {
		deadline = fullStats.TotalTime / 10
	}
	ctx, cancel := context.WithTimeout(context.Background(), deadline)
	defer cancel()
	start := time.Now()
	results, stats := eng.SearchContext(ctx, q, 10)
	elapsed := time.Since(start)

	if !stats.Truncated {
		t.Fatalf("deadline %v did not truncate (full search takes %v, scored %d/%d)",
			deadline, fullStats.TotalTime, stats.Scored, stats.Candidates)
	}
	if stats.Scored >= env.Lake.NumTables() {
		t.Errorf("truncated search scored the whole corpus (%d tables)", stats.Scored)
	}
	// The cancellation granule is one table, so the search must return
	// within roughly the deadline plus a few table-scoring granules — far
	// below the full corpus scan. The bound is generous for slow CI.
	if budget := deadline + 500*time.Millisecond; elapsed > budget {
		t.Errorf("truncated search took %v, want under %v (full search: %v)",
			elapsed, budget, fullStats.TotalTime)
	}
	// The prefix must carry exact reference scores in rank order.
	for i, r := range results {
		want, ok := ref[r.Table]
		if !ok {
			t.Fatalf("result %d (table %d) not in reference ranking", i, r.Table)
		}
		if r.Score != want {
			t.Fatalf("table %d score = %v, reference %v", r.Table, r.Score, want)
		}
		if i > 0 && (r.Score > results[i-1].Score ||
			(r.Score == results[i-1].Score && r.Table <= results[i-1].Table)) {
			t.Fatalf("truncated results not ranked at %d: %v then %v", i, results[i-1], r)
		}
	}
}

func TestSearchContextExpiredOnFullCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the full synthetic benchmark environment")
	}
	env := benchEnvironment(t)
	eng := core.NewEngine(env.Lake, env.TJ)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	results, stats := eng.SearchContext(ctx, env.Queries5[0].Query, 10)
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("dead-context search took %v", elapsed)
	}
	if !stats.Truncated {
		t.Error("dead-context search not marked Truncated")
	}
	if len(results) != 0 {
		t.Errorf("dead-context search returned %d results", len(results))
	}
}
