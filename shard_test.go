package thetis

// Shard-count invariance battery (docs/SHARDING.md): a ShardedSystem must
// rank bit-for-bit like an unsharded System over the same corpus — same
// global table IDs, same scores, same order — for every shard count,
// partitioning strategy, similarity, aggregation, score mode, parallelism,
// and LSH setting. These tests are the executable form of that contract.

import (
	"context"
	"strings"
	"sync"
	"testing"

	"thetis/internal/datagen"
)

var (
	batteryOnce    sync.Once
	batteryKG      *datagen.KG
	batteryTables  []*Table
	batteryQueries []Query
)

// batteryEnv generates a small synthetic corpus once: a typed KG, a few
// hundred WT2015-profile tables (iterated in ingestion order so System and
// ShardedSystem assign identical global IDs), and mixed 1-/5-tuple queries.
func batteryEnv(t *testing.T) (*datagen.KG, []*Table, []Query) {
	t.Helper()
	batteryOnce.Do(func() {
		batteryKG = datagen.GenerateKG(datagen.KGConfig{
			Domains: 5, LeafTypesPerDomain: 2, MembersPerLeafType: 40,
			GroupsPerDomain: 6, Places: 25, EdgesPerMember: 2, Seed: 17,
		})
		l := datagen.GenerateCorpus(batteryKG, datagen.ProfileWT2015(300))
		for id := 0; id < l.NumTables(); id++ {
			batteryTables = append(batteryTables, l.Table(TableID(id)))
		}
		for _, bq := range datagen.GenerateQueries(batteryKG, datagen.QueryConfig{
			Count: 4, TuplesPerQuery: 5, Width: 3, Seed: 17,
		}) {
			batteryQueries = append(batteryQueries, bq.Truncate(1).Query, bq.Query)
		}
	})
	return batteryKG, batteryTables, batteryQueries
}

// buildPair ingests the same table sequence into an unsharded System and an
// n-shard ShardedSystem, both with type similarity selected.
func buildPair(t *testing.T, n int, part Partitioner) (*System, *ShardedSystem) {
	t.Helper()
	kgEnv, tables, _ := batteryEnv(t)
	sys := New(kgEnv.Graph)
	ss := NewShardedSystem(kgEnv.Graph, part)
	for i, tb := range tables {
		if got := sys.AddTable(tb); got != TableID(i) {
			t.Fatalf("System assigned ID %d to table %d", got, i)
		}
		if got := ss.AddTable(tb); got != TableID(i) {
			t.Fatalf("ShardedSystem assigned ID %d to table %d", got, i)
		}
	}
	sys.UseTypeSimilarity()
	ss.UseTypeSimilarity()
	return sys, ss
}

// assertIdenticalRankings compares every query's ranking — IDs and scores,
// bit for bit — between the two systems.
func assertIdenticalRankings(t *testing.T, label string, sys *System, ss *ShardedSystem, queries []Query, k int) {
	t.Helper()
	for qi, q := range queries {
		want, wantStats := sys.SearchStats(q, k)
		got, gotStats := ss.SearchStats(q, k)
		if len(got) != len(want) {
			t.Fatalf("%s q%d: sharded returned %d results, unsharded %d", label, qi, len(got), len(want))
		}
		for i := range want {
			if got[i].Table != want[i].Table || got[i].Score != want[i].Score {
				t.Fatalf("%s q%d rank %d: sharded %+v, unsharded %+v", label, qi, i, got[i], want[i])
			}
		}
		if wantStats.Truncated || gotStats.Truncated {
			t.Fatalf("%s q%d: unexpected truncation (unsharded=%v sharded=%v)",
				label, qi, wantStats.Truncated, gotStats.Truncated)
		}
	}
}

func TestShardCountInvarianceFullScan(t *testing.T) {
	_, _, queries := batteryEnv(t)
	configs := []struct {
		name string
		agg  Aggregation
		mode ScoreMode
		par  int
	}{
		{"max-entitywise-par0", AggregateMax, ModeEntityWise, 0},
		{"avg-entitywise-par1", AggregateAvg, ModeEntityWise, 1},
		{"max-pairwise-par4", AggregateMax, ModePairwise, 4},
		{"avg-pairwise-par1", AggregateAvg, ModePairwise, 1},
	}
	for _, mk := range []struct {
		name string
		part func(int) Partitioner
	}{
		{"hash", NewHashPartitioner},
		{"balanced", NewBalancedPartitioner},
	} {
		for _, n := range []int{1, 2, 4} {
			sys, ss := buildPair(t, n, mk.part(n))
			for _, cfg := range configs {
				sys.SetAggregation(cfg.agg)
				ss.SetAggregation(cfg.agg)
				sys.SetScoreMode(cfg.mode)
				ss.SetScoreMode(cfg.mode)
				sys.SetParallelism(cfg.par)
				ss.SetParallelism(cfg.par)
				label := mk.name + "/" + cfg.name
				assertIdenticalRankings(t, label, sys, ss, queries, 10)
				assertIdenticalRankings(t, label+"/all", sys, ss, queries[:2], -1)
			}
		}
	}
}

func TestShardCountInvarianceWithLSH(t *testing.T) {
	_, _, queries := batteryEnv(t)
	for _, n := range []int{1, 2, 4} {
		sys, ss := buildPair(t, n, NewHashPartitioner(n))
		cfg := DefaultIndexConfig()
		sys.BuildIndex(cfg)
		ss.BuildIndex(cfg)
		if !ss.HasIndex() {
			t.Fatalf("shards=%d: not every shard has an index", n)
		}
		for _, votes := range []int{1, 2, 3} {
			sys.SetVotes(votes)
			ss.SetVotes(votes)
			assertIdenticalRankings(t, "lsh", sys, ss, queries, 10)
		}
	}
}

func TestShardCountInvarianceEmbeddings(t *testing.T) {
	_, _, queries := batteryEnv(t)
	sys, ss := buildPair(t, 3, NewHashPartitioner(3))
	store := sys.TrainEmbeddings(
		WalkConfig{WalksPerEntity: 4, Length: 5, Undirected: true, Seed: 9},
		TrainConfig{Dim: 16, Window: 3, Negatives: 3, Epochs: 2, LearningRate: 0.03, Seed: 9},
	)
	ss.SetEmbeddings(store)
	sys.UseEmbeddingSimilarity()
	ss.UseEmbeddingSimilarity()
	assertIdenticalRankings(t, "embeddings", sys, ss, queries, 10)

	// Hyperplane-LSH prefiltered as well.
	cfg := DefaultIndexConfig()
	sys.BuildIndex(cfg)
	ss.BuildIndex(cfg)
	sys.SetVotes(2)
	ss.SetVotes(2)
	assertIdenticalRankings(t, "embeddings-lsh", sys, ss, queries, 10)
}

func TestShardedKeywordAndHybridMatchUnsharded(t *testing.T) {
	_, _, queries := batteryEnv(t)
	sys, ss := buildPair(t, 4, NewHashPartitioner(4))
	sys.BuildKeywordIndex()
	ss.BuildKeywordIndex()
	kw := "member domain city"
	a := sys.KeywordSearch(kw, 10)
	b := ss.KeywordSearch(kw, 10)
	if len(a) != len(b) {
		t.Fatalf("keyword result counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("keyword rank %d differs: %d vs %d", i, a[i], b[i])
		}
	}
	ha := sys.HybridSearch(queries[1], kw, 10)
	hb := ss.HybridSearch(queries[1], kw, 10)
	if len(ha) != len(hb) {
		t.Fatalf("hybrid result counts differ: %d vs %d", len(ha), len(hb))
	}
	for i := range ha {
		if ha[i] != hb[i] {
			t.Fatalf("hybrid rank %d differs: %d vs %d", i, ha[i], hb[i])
		}
	}
}

func TestShardedIncrementalIngestionKeepsInvariance(t *testing.T) {
	_, tables, queries := batteryEnv(t)
	sys, ss := buildPair(t, 3, NewHashPartitioner(3))
	cfg := DefaultIndexConfig()
	sys.BuildIndex(cfg)
	ss.BuildIndex(cfg)
	// Re-ingest a few tables under fresh IDs after the indexes were built:
	// both sides must extend incrementally and stay identical.
	for _, tb := range tables[:5] {
		if sys.AddTable(tb) != ss.AddTable(tb) {
			t.Fatal("post-index global IDs diverged")
		}
	}
	sys.SetVotes(2)
	ss.SetVotes(2)
	assertIdenticalRankings(t, "incremental", sys, ss, queries, 10)
}

// staticShard is a Shard returning a fixed ranking — the public-API
// equivalent of a remote shard for partial-failure and tie-merge tests.
type staticShard struct {
	res   []Result
	stats SearchStats
}

func (f staticShard) SearchShard(ctx context.Context, q Query, k int, opts ShardSearchOptions) ([]Result, SearchStats) {
	if ctx.Err() != nil {
		st := f.stats
		st.Truncated = true
		return nil, st
	}
	res := f.res
	if k >= 0 && k < len(res) {
		res = res[:k]
	}
	return res, f.stats
}

func TestCoordinatorPartialFailureDeterministic(t *testing.T) {
	healthy := staticShard{
		res:   []Result{{Table: 2, Score: 0.9}, {Table: 4, Score: 0.5}},
		stats: SearchStats{Candidates: 2, Scored: 2},
	}
	// A panicking shard contributes an empty truncated leg; the merged
	// result is healthy's correctly ranked prefix, marked truncated.
	live := NewCoordinator(healthy, deadShard{})
	got, stats := live.Search(context.Background(), Query{}, 10)
	if len(got) != 2 || got[0].Table != 2 || got[1].Table != 4 {
		t.Fatalf("partial failure lost the healthy ranking: %v", got)
	}
	if !stats.Truncated {
		t.Fatal("merged stats must be marked truncated after a failed leg")
	}
	// Determinism: repeated searches give the same answer.
	again, _ := live.Search(context.Background(), Query{}, 10)
	for i := range got {
		if got[i] != again[i] {
			t.Fatalf("partial-failure result not deterministic: %v vs %v", got, again)
		}
	}
}

// deadShard always fails by panicking; the coordinator must contain it.
type deadShard struct{}

func (deadShard) SearchShard(ctx context.Context, q Query, k int, opts ShardSearchOptions) ([]Result, SearchStats) {
	panic("shard down")
}

// erroringShard degrades the way a remote shard does: empty truncated leg
// with the cause in ShardErrors.
type erroringShard struct{ msg string }

func (e erroringShard) SearchShard(ctx context.Context, q Query, k int, opts ShardSearchOptions) ([]Result, SearchStats) {
	return nil, SearchStats{Truncated: true, ShardErrors: []string{e.msg}}
}

func TestCoordinatorAllLegsFailExplicitEmpty(t *testing.T) {
	// Every leg fails — one by panicking, one by degrading like a remote
	// shard whose replicas are all dead. The edge case must compose into
	// an EXPLICIT empty truncated result (not nil-with-ok stats, not a
	// panic escaping the coordinator), with per-shard causes in
	// Stats.ShardErrors so an operator can tell which legs died and why.
	live := NewCoordinator(deadShard{}, erroringShard{msg: "attempt 1: connection refused"})
	got, stats := live.Search(context.Background(), Query{}, 10)
	if len(got) != 0 {
		t.Fatalf("all-legs-failed search returned results: %v", got)
	}
	if !stats.Truncated {
		t.Fatal("all-legs-failed search must be marked truncated")
	}
	if len(stats.ShardErrors) != 2 {
		t.Fatalf("want one ShardErrors entry per failed leg, got %v", stats.ShardErrors)
	}
	var sawPanic, sawRefused bool
	for _, e := range stats.ShardErrors {
		if strings.HasPrefix(e, "shard 0:") && strings.Contains(e, "panic: shard down") {
			sawPanic = true
		}
		if strings.HasPrefix(e, "shard 1:") && strings.Contains(e, "connection refused") {
			sawRefused = true
		}
	}
	if !sawPanic || !sawRefused {
		t.Fatalf("per-shard causes missing or unlabeled: %v", stats.ShardErrors)
	}
	// Determinism: the same dead fleet answers identically every time.
	again, astats := live.Search(context.Background(), Query{}, 10)
	if len(again) != 0 || !astats.Truncated || len(astats.ShardErrors) != 2 {
		t.Fatalf("all-legs-failed result not deterministic: %v / %+v", again, astats.ShardErrors)
	}
}

func TestCoordinatorCrossShardTiesStableUnderShardOrder(t *testing.T) {
	// Three shards with fully tied scores: the merged order must be
	// ascending table ID no matter how the shards are ordered.
	a := staticShard{res: []Result{{Table: 3, Score: 0.5}, {Table: 9, Score: 0.5}}}
	b := staticShard{res: []Result{{Table: 1, Score: 0.5}, {Table: 7, Score: 0.5}}}
	c := staticShard{res: []Result{{Table: 0, Score: 0.5}, {Table: 5, Score: 0.5}}}
	want := []TableID{0, 1, 3, 5, 7, 9}
	for _, order := range [][]Shard{
		{a, b, c}, {c, b, a}, {b, c, a}, {a, c, b},
	} {
		got, _ := NewCoordinator(order...).Search(context.Background(), Query{}, -1)
		if len(got) != len(want) {
			t.Fatalf("merged %d results, want %d", len(got), len(want))
		}
		for i := range want {
			if got[i].Table != want[i] {
				t.Fatalf("tie order depends on shard order: got %v at rank %d, want %v", got[i].Table, i, want[i])
			}
		}
	}
}

func TestShardedSearchContextCancellation(t *testing.T) {
	_, _, queries := batteryEnv(t)
	_, ss := buildPair(t, 2, NewHashPartitioner(2))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, stats := ss.SearchStatsContext(ctx, queries[1], 10)
	if !stats.Truncated {
		t.Fatal("cancelled sharded search must report truncation")
	}
}

func TestShardedSystemStatsMatchUnsharded(t *testing.T) {
	sys, ss := buildPair(t, 4, NewBalancedPartitioner(4))
	a, b := sys.Stats(), ss.Stats()
	if a.Tables != b.Tables || a.DistinctEntities != b.DistinctEntities {
		t.Fatalf("aggregate stats diverge: %+v vs %+v", a, b)
	}
	const eps = 1e-9
	if diff := a.MeanRows - b.MeanRows; diff > eps || diff < -eps {
		t.Fatalf("mean rows diverge: %v vs %v", a.MeanRows, b.MeanRows)
	}
	if diff := a.MeanColumns - b.MeanColumns; diff > eps || diff < -eps {
		t.Fatalf("mean columns diverge: %v vs %v", a.MeanColumns, b.MeanColumns)
	}
	total := 0
	for i := 0; i < ss.NumShards(); i++ {
		total += ss.ShardNumTables(i)
	}
	if total != ss.NumTables() {
		t.Fatalf("shards own %d tables, system reports %d", total, ss.NumTables())
	}
}
