package thetis_test

// Benchmark harness: one testing.B benchmark per table/figure of the
// paper's evaluation (Section 7). Each benchmark regenerates its artifact
// over a shared scaled-down benchmark environment and reports headline
// numbers as custom metrics. Run everything with:
//
//	go test -bench=. -benchmem
//
// The full-size paper-style report is produced by cmd/benchrunner.

import (
	"sync"
	"testing"

	"thetis/internal/core"
	"thetis/internal/experiments"
)

var (
	benchOnce sync.Once
	benchEnv  *experiments.Env
)

// benchEnvironment lazily builds the shared scaled-down environment. It is
// also used by the request-lifecycle tests (timeout_test.go), hence
// testing.TB rather than *testing.B.
func benchEnvironment(b testing.TB) *experiments.Env {
	b.Helper()
	benchOnce.Do(func() {
		benchEnv = experiments.NewEnv(experiments.SmallConfig(), nil)
	})
	return benchEnv
}

// BenchmarkTable2CorpusStats regenerates Table 2 (benchmark statistics for
// the four corpus profiles).
func BenchmarkTable2CorpusStats(b *testing.B) {
	env := benchEnvironment(b)
	b.ResetTimer()
	var res experiments.Table2Result
	for i := 0; i < b.N; i++ {
		res = experiments.RunTable2(env)
	}
	b.ReportMetric(res.Rows[0].MeanCoverage*100, "wt2015-cov-%")
	b.ReportMetric(float64(res.Rows[3].Tables), "synthetic-tables")
}

// BenchmarkFig4NDCG regenerates Figure 4 (NDCG@10 for semantic search, LSH
// configurations, and baselines).
func BenchmarkFig4NDCG(b *testing.B) {
	env := benchEnvironment(b)
	b.ResetTimer()
	var res experiments.Fig4Result
	for i := 0; i < b.N; i++ {
		res = experiments.RunFig4(env)
	}
	b.ReportMetric(res.Mean("STST", 1), "stst-ndcg@10")
	b.ReportMetric(res.Mean("STSE", 1), "stse-ndcg@10")
	b.ReportMetric(res.Mean("BM25text", 1), "bm25-ndcg@10")
	b.ReportMetric(res.Mean("TURL", 1), "turl-ndcg@10")
}

// BenchmarkFig5Recall regenerates Figure 5 (recall@100/@200 with the
// BM25-complemented STSTC/STSEC variants).
func BenchmarkFig5Recall(b *testing.B) {
	env := benchEnvironment(b)
	b.ResetTimer()
	var res experiments.Fig5Result
	for i := 0; i < b.N; i++ {
		res = experiments.RunFig5(env)
	}
	b.ReportMetric(res.Median("BM25text", 5, 100), "bm25-recall@100")
	b.ReportMetric(res.Median("STSTC", 5, 100), "ststc-recall@100")
	b.ReportMetric(res.Median("STSEC", 5, 100), "stsec-recall@100")
}

// BenchmarkTable3Runtime regenerates Table 3 (search runtime per LSH
// configuration and vote threshold).
func BenchmarkTable3Runtime(b *testing.B) {
	env := benchEnvironment(b)
	b.ResetTimer()
	var res experiments.Table34Result
	for i := 0; i < b.N; i++ {
		res = experiments.RunTable34(env)
	}
	if c, ok := res.Cell("T(30,10)", 5, 3); ok {
		b.ReportMetric(float64(c.MeanTime.Microseconds()), "t3010-5t-3v-us")
	}
	if c, ok := res.Cell("STST", 5, 0); ok {
		b.ReportMetric(float64(c.MeanTime.Microseconds()), "stst-brute-5t-us")
	}
}

// BenchmarkTable4Reduction regenerates Table 4 (search-space reduction per
// LSH configuration and vote threshold).
func BenchmarkTable4Reduction(b *testing.B) {
	env := benchEnvironment(b)
	b.ResetTimer()
	var res experiments.Table34Result
	for i := 0; i < b.N; i++ {
		res = experiments.RunTable34(env)
	}
	if c, ok := res.Cell("T(30,10)", 1, 3); ok {
		b.ReportMetric(c.Reduction*100, "t3010-1t-3v-red-%")
	}
	if c, ok := res.Cell("E(30,10)", 1, 3); ok {
		b.ReportMetric(c.Reduction*100, "e3010-1t-3v-red-%")
	}
}

// BenchmarkFig6Coverage regenerates Figure 6 (NDCG@10 when decreasing
// entity-link coverage).
func BenchmarkFig6Coverage(b *testing.B) {
	env := benchEnvironment(b)
	b.ResetTimer()
	var res experiments.Fig6Result
	for i := 0; i < b.N; i++ {
		res = experiments.RunFig6(env)
	}
	b.ReportMetric(res.Mean("STST", 1, 1.0), "stst-cov100-ndcg")
	b.ReportMetric(res.Mean("STST", 1, 0.4), "stst-cov40-ndcg")
}

// BenchmarkAblationAggregation regenerates the MAX-vs-AVG row aggregation
// ablation of Section 7.2.
func BenchmarkAblationAggregation(b *testing.B) {
	env := benchEnvironment(b)
	b.ResetTimer()
	var res experiments.AggregationResult
	for i := 0; i < b.N; i++ {
		res = experiments.RunAggregationAblation(env)
	}
	b.ReportMetric(res.Mean("STST", 5, core.AggregateMax), "max-ndcg")
	b.ReportMetric(res.Mean("STST", 5, core.AggregateAvg), "avg-ndcg")
}

// BenchmarkTableScoring regenerates the per-table scoring microbenchmark of
// Section 7.3 (cost of scoring one table; fraction spent in the mapping µ).
func BenchmarkTableScoring(b *testing.B) {
	env := benchEnvironment(b)
	b.ResetTimer()
	var res experiments.ScoringResult
	for i := 0; i < b.N; i++ {
		res = experiments.RunScoring(env)
	}
	for _, row := range res.Rows {
		if row.Tuples == 1 && row.Method == "STST" {
			b.ReportMetric(float64(row.MeanPerTable.Nanoseconds()), "ns/table")
			b.ReportMetric(row.MappingFraction*100, "mapping-%")
		}
	}
}

// BenchmarkScaling regenerates the synthetic-corpus scaling sweep of
// Section 7.4.
func BenchmarkScaling(b *testing.B) {
	env := benchEnvironment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.RunScaling(env)
	}
}

// BenchmarkBM25FilterAblation regenerates the BM25-as-prefilter ablation of
// Section 7.3.
func BenchmarkBM25FilterAblation(b *testing.B) {
	env := benchEnvironment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.RunBM25FilterAblation(env)
	}
}

// BenchmarkSearchBruteVsLSH measures a single search end-to-end, the
// operation Tables 3/4 aggregate: brute force versus (30,10)-prefiltered.
func BenchmarkSearchBruteVsLSH(b *testing.B) {
	env := benchEnvironment(b)
	m := experiments.NewMethods(env)
	query := env.Queries5[0]
	for _, bench := range []struct {
		name   string
		runner experiments.Runner
	}{
		{"BruteTypes", m.SemanticBrute(experiments.SimTypes)},
		{"BruteEmbeddings", m.SemanticBrute(experiments.SimEmbeddings)},
		{"LSHTypes3010", m.SemanticLSH(experiments.SimTypes, core.LSEIConfig{Vectors: 30, BandSize: 10, Seed: 1}, 3)},
		{"LSHEmbeddings3010", m.SemanticLSH(experiments.SimEmbeddings, core.LSEIConfig{Vectors: 30, BandSize: 10, Seed: 1}, 3)},
	} {
		b.Run(bench.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				bench.runner.Search(query, 10)
			}
		})
	}
}

// BenchmarkMappingWideQuery measures a brute-force search with a wide
// multi-tuple query whose tuples repeat entities — the regression guard for
// the σ-submatrix reuse in the column mapping (docs/PERFORMANCE.md): each
// distinct query entity's score-matrix row is computed once per table and
// shared by every tuple, so width and repetition must not multiply σ cost.
func BenchmarkMappingWideQuery(b *testing.B) {
	env := benchEnvironment(b)
	// Flatten the benchmark query's 5 tuples into 5 wide tuples that all
	// share one entity pool — maximal cross-tuple repetition.
	var pool core.Tuple
	for _, tu := range env.Queries5[0].Query {
		pool = append(pool, tu...)
	}
	wide := make(core.Query, 5)
	for i := range wide {
		wide[i] = append(core.Tuple{}, pool[i%len(pool)])
		wide[i] = append(wide[i], pool...)
	}
	for _, mapping := range []core.MappingMethod{core.MappingHungarian, core.MappingGreedy} {
		b.Run(mapping.String(), func(b *testing.B) {
			eng := core.NewEngine(env.Lake, env.TJ)
			eng.Mapping = mapping
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				eng.Search(wide, 10)
			}
		})
	}
}

// BenchmarkAblationScoreMode regenerates the SemRel-interpretation ablation
// (entity-wise Algorithm 1 vs pairwise Equation 1).
func BenchmarkAblationScoreMode(b *testing.B) {
	env := benchEnvironment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.RunScoreModeAblation(env)
	}
}

// BenchmarkAblationMapping regenerates the Hungarian-vs-greedy column
// mapping ablation.
func BenchmarkAblationMapping(b *testing.B) {
	env := benchEnvironment(b)
	b.ResetTimer()
	var res experiments.MappingResult
	for i := 0; i < b.N; i++ {
		res = experiments.RunMappingAblation(env)
	}
	b.ReportMetric(res.Mean("STST", 5, core.MappingHungarian), "hungarian-ndcg")
	b.ReportMetric(res.Mean("STST", 5, core.MappingGreedy), "greedy-ndcg")
}

// BenchmarkAblationQueryAggregation regenerates the query-side LSH column
// aggregation ablation of Section 6.2.
func BenchmarkAblationQueryAggregation(b *testing.B) {
	env := benchEnvironment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.RunQueryAggAblation(env)
	}
}

// BenchmarkEmbeddingTraining measures the RDF2Vec-substitute training
// pipeline end to end on the benchmark KG.
func BenchmarkEmbeddingTraining(b *testing.B) {
	env := benchEnvironment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		store := trainForBench(env, env.Config)
		if store.Len() == 0 {
			b.Fatal("no vectors trained")
		}
	}
}

// BenchmarkAblationInformativeness regenerates the IDF-vs-uniform
// informativeness ablation (Section 5.2's weighting).
func BenchmarkAblationInformativeness(b *testing.B) {
	env := benchEnvironment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.RunInformativenessAblation(env)
	}
}

// BenchmarkAblationWalkVocabulary regenerates the entity-only vs
// predicate-aware walk ablation for embedding training.
func BenchmarkAblationWalkVocabulary(b *testing.B) {
	env := benchEnvironment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.RunWalkAblation(env)
	}
}
