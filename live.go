// Live-lake maintenance: incremental AddTable/RemoveTable against built
// indexes, epoch-versioned invalidation, compaction, and the write-ahead
// delta log that lets a restart replay base snapshot + deltas. The design
// and its rebuild-equivalence invariant — after any mutation sequence,
// search results are bit-identical to a from-scratch build over the final
// corpus — are documented in docs/LIVE_INDEX.md and checked by
// live_test.go.
package thetis

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"os"

	"thetis/internal/atomicio"
	"thetis/internal/bm25"
	"thetis/internal/obs"
	"thetis/internal/table"
)

var (
	mIndexEpoch   = obs.IndexEpoch(nil)
	mDeltaAdds    = obs.IndexDeltasTotal(nil, "add")
	mDeltaRemoves = obs.IndexDeltasTotal(nil, "remove")
	mTombstones   = obs.IndexTombstones(nil)
	mCompactions  = obs.IndexCompactionsTotal(nil)
)

// ErrNoSuchTable reports a RemoveTable (or delta replay) against an ID
// that was never assigned or is already removed.
var ErrNoSuchTable = errors.New("thetis: no such table")

// Delta-log operation codes.
const (
	deltaOpAdd    = byte(1) // payload: one table in the annotated JSON format
	deltaOpRemove = byte(2) // payload: table ID as little-endian uint32
)

// RemoveTable removes a table from the corpus and from every live index:
// its LSH signatures leave the LSEI buckets, the frequent-type filter is
// re-balanced (re-signing whatever the departure flips), its BM25 postings
// disappear, and its memoized column index is dropped. The ID is
// tombstoned, never reused; Table(id) returns nil afterwards. Removal may
// run concurrently with searches; it blocks them briefly.
func (s *System) RemoveTable(id TableID) error {
	s.maintMu.Lock()
	defer s.maintMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.lake.Table(id) == nil {
		return ErrNoSuchTable
	}
	if s.delta != nil {
		var p [4]byte
		binary.LittleEndian.PutUint32(p[:], uint32(id))
		s.delta.append(deltaOpRemove, p[:])
	}
	s.removeTableLocked(id)
	return nil
}

// AddTableJSON ingests one table in the annotated JSON interchange format
// (the body of the daemon's POST /tables), interning any entity URIs into
// the graph, and returns its ID.
func (s *System) AddTableJSON(data []byte) (TableID, error) {
	s.maintMu.Lock()
	defer s.maintMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	t, err := table.ReadJSON(s.graph, bytes.NewReader(data))
	if err != nil {
		return 0, err
	}
	s.logAddLocked(t)
	return s.addTableLocked(t), nil
}

// IndexEpoch returns the lake's mutation epoch: a counter bumped by every
// AddTable and RemoveTable (compaction does not bump it — the corpus is
// unchanged). Memoized per-table state is validated against it.
func (s *System) IndexEpoch() uint64 { return s.lake.Epoch() }

// Compact rebuilds the active LSEI (and its frequent-type filter state)
// from the live corpus and hot-swaps it in, shedding tombstoned column
// slots and emptied buckets accumulated by removals. Searches keep flowing
// against the old index during the rebuild; the corpus epoch is unchanged.
// A no-op when no index is active.
func (s *System) Compact() {
	s.maintMu.Lock()
	defer s.maintMu.Unlock()
	if s.engine == nil || s.index.Load() == nil {
		return
	}
	s.rebuildIndexLocked()
	mCompactions.Inc()
}

// GraphCounts is a consistent snapshot of the KG's size counters, taken
// under the serving lock so it never races live ingestion (which interns
// new entities into the graph).
type GraphCounts struct {
	Entities   int
	Types      int
	Predicates int
	Edges      int
}

// GraphCounts returns the KG's size counters at one corpus epoch.
func (s *System) GraphCounts() GraphCounts {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return GraphCounts{
		Entities:   s.graph.NumEntities(),
		Types:      s.graph.NumTypes(),
		Predicates: s.graph.NumPredicates(),
		Edges:      s.graph.NumEdges(),
	}
}

// addTableLocked applies one table addition to every live structure. The
// frequent-type filter is re-balanced BEFORE the table joins the corpus,
// so the new table's signatures are computed under the filter that now
// includes it — the order a from-scratch rebuild implies. Caller holds
// maintMu and mu.
func (s *System) addTableLocked(t *Table) TableID {
	ix := s.index.Load()
	if s.filterState != nil {
		if ix != nil {
			s.filterState.AddTable(t, ix)
		} else {
			s.filterState.AddTable(t)
		}
	}
	id := s.lake.Add(t)
	if ix != nil {
		ix.AddTable(id)
	}
	if s.keyword != nil {
		s.keyword.Add(int32(id), bm25.TableText(t))
		s.keyword.Finish()
	}
	mDeltaAdds.Inc()
	s.noteEpochLocked()
	return id
}

// removeTableLocked applies one table removal to every live structure. The
// LSEI removal runs while the filter still matches the stored signatures;
// the filter re-balances AFTER. Caller holds maintMu and mu and has
// verified the table is live.
func (s *System) removeTableLocked(id TableID) {
	t := s.lake.Table(id)
	s.lake.Remove(id)
	ix := s.index.Load()
	if ix != nil {
		ix.RemoveTable(id, t)
	}
	if s.filterState != nil {
		if ix != nil {
			s.filterState.RemoveTable(t, ix)
		} else {
			s.filterState.RemoveTable(t)
		}
	}
	if s.keyword != nil {
		s.keyword.Remove(int32(id))
		s.keyword.Finish()
	}
	mDeltaRemoves.Inc()
	s.noteEpochLocked()
}

func (s *System) noteEpochLocked() {
	mIndexEpoch.Set(float64(s.lake.Epoch()))
	mTombstones.Set(float64(s.lake.NumSlots() - s.lake.NumTables()))
	if s.cross != nil {
		// Lazily invalidate the cross-query σ cache: entries tagged with
		// older epochs miss from now on (docs/THROUGHPUT.md).
		s.cross.SetEpoch(s.lake.Epoch())
	}
}

// logAddLocked write-ahead-logs one addition when a delta log is attached.
func (s *System) logAddLocked(t *Table) {
	if s.delta == nil {
		return
	}
	var buf bytes.Buffer
	if err := table.WriteJSON(t, s.graph, &buf); err != nil {
		s.delta.fail(err)
		return
	}
	s.delta.append(deltaOpAdd, buf.Bytes())
}

// deltaLog binds a System to an append-only atomicio delta log. Append
// errors are sticky: the in-memory mutation still applies (availability
// over log durability), the log stops accepting records, and
// DeltaLogError reports the failure so the operator can snapshot and
// rotate.
type deltaLog struct {
	f   *os.File
	w   *atomicio.DeltaWriter
	err error
}

func (d *deltaLog) append(op byte, payload []byte) {
	if d.err != nil {
		return
	}
	if err := d.w.Append(op, payload); err != nil {
		d.err = err
		return
	}
	if err := d.f.Sync(); err != nil {
		d.err = err
	}
}

func (d *deltaLog) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

// AttachDeltaLog binds path as the system's write-ahead mutation log.
//
// A missing or empty file starts a fresh log whose header records the
// current table-slot count as the base, and every subsequent AddTable/
// AddTableJSON/RemoveTable appends one fsynced record. An existing log is
// validated against the loaded base corpus (slot-count mismatch is
// corruption), its records are replayed through the normal mutation path —
// reproducing exactly the index state the previous process reached — and
// appending resumes at the next sequence number.
//
// Any damage — flipped bytes, truncation mid-record, reordered or
// duplicated records, a remove of a dead ID — surfaces as
// atomicio.ErrCorruptSnapshot and leaves no log attached; records before
// the damage may already have mutated the corpus (the replay loop applies
// as it reads), so callers must treat an error as "restore from base and a
// clean log", matching the snapshot discipline in docs/RELIABILITY.md.
//
// Attach after loading the base corpus and before serving. The delta log
// covers single-node systems; sharded deployments snapshot per shard
// (docs/LIVE_INDEX.md).
func (s *System) AttachDeltaLog(path string) error {
	s.maintMu.Lock()
	defer s.maintMu.Unlock()
	if s.delta != nil {
		return errors.New("thetis: delta log already attached")
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return err
	}
	if st.Size() == 0 {
		dw, err := atomicio.NewDeltaWriter(f, uint64(s.lake.NumSlots()))
		if err != nil {
			f.Close()
			return err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
		s.delta = &deltaLog{f: f, w: dw}
		return nil
	}
	next, err := s.replayDeltas(f)
	if err != nil {
		f.Close()
		return err
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return err
	}
	s.delta = &deltaLog{f: f, w: atomicio.ResumeDeltaWriter(f, next)}
	return nil
}

// replayDeltas validates the log header against the base corpus and
// replays every record through the normal mutation path, returning the
// next sequence number for appending.
func (s *System) replayDeltas(r io.Reader) (uint64, error) {
	dr, err := atomicio.NewDeltaReader(r)
	if err != nil {
		return 0, err
	}
	if got, want := dr.BaseTables(), uint64(s.lake.NumSlots()); got != want {
		return 0, atomicio.Corruptf(
			"delta log expects a base of %d table slots, corpus has %d (wrong base snapshot?)", got, want)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		_, op, payload, err := dr.Next()
		if err == io.EOF {
			return dr.NextSeq(), nil
		}
		if err != nil {
			return 0, err
		}
		if err := s.applyDeltaLocked(op, payload); err != nil {
			return 0, err
		}
	}
}

// applyDeltaLocked re-applies one logged mutation during replay.
func (s *System) applyDeltaLocked(op byte, payload []byte) error {
	switch op {
	case deltaOpAdd:
		t, err := table.ReadJSON(s.graph, bytes.NewReader(payload))
		if err != nil {
			return atomicio.Corruptf("delta add: bad table payload: %v", err)
		}
		s.addTableLocked(t)
	case deltaOpRemove:
		if len(payload) != 4 {
			return atomicio.Corruptf("delta remove: payload length %d, want 4", len(payload))
		}
		id := TableID(binary.LittleEndian.Uint32(payload))
		if s.lake.Table(id) == nil {
			return atomicio.Corruptf("delta remove: table %d is not live", id)
		}
		s.removeTableLocked(id)
	default:
		return atomicio.Corruptf("unknown delta op %d", op)
	}
	return nil
}

// DeltaLogError returns the sticky error of the attached delta log: nil
// while every mutation has been durably logged, the first append/sync
// failure afterwards. Mutations keep applying in memory once the log
// fails; the operator should snapshot the corpus and attach a fresh log.
func (s *System) DeltaLogError() error {
	s.maintMu.Lock()
	defer s.maintMu.Unlock()
	if s.delta == nil {
		return nil
	}
	return s.delta.err
}

// CloseDeltaLog detaches and closes the delta log (no-op when none is
// attached). Subsequent mutations are no longer logged.
func (s *System) CloseDeltaLog() error {
	s.maintMu.Lock()
	defer s.maintMu.Unlock()
	if s.delta == nil {
		return nil
	}
	err := s.delta.f.Close()
	s.delta = nil
	return err
}
